"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — kernels and configurations available
* ``offload``                   — simulate one kernel offload on one config
* ``serve``                     — multi-tenant QoS serving simulation
* ``faults``                    — seeded fault campaign with RAID recovery
* ``fleet``                     — rack-scale multi-device fleet simulation
* ``zns``                       — zoned-namespace LSM campaign (compaction offload)
* ``dse``                       — design-space sweep with Pareto-frontier report
* ``trace``                     — serve run with tracing on; Chrome/Perfetto JSON out
* ``profile``                   — ISA-level cycle-attribution profile of one kernel
* ``figure {5,13,14,15,16,19,20,21,22}`` — regenerate a paper figure
* ``table {1,2,4,5}``           — regenerate a paper table
* ``tpch``                      — run TPC-H queries end-to-end on the live device
* ``sql``                       — interactive SQL shell (or ``-e``/``-f`` batch)
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(args) -> int:
    from repro.config import CONFIG_NAMES
    from repro.kernels import KERNEL_NAMES

    print("kernels :", ", ".join(KERNEL_NAMES))
    print("configs :", ", ".join(CONFIG_NAMES))
    return 0


def _cmd_offload(args) -> int:
    from repro.config import named_config
    from repro.kernels import get_kernel
    from repro.ssd import simulate_offload

    config = named_config(args.config).with_exec_engine(args.engine)
    kernel = get_kernel(args.kernel)
    result = simulate_offload(
        config, kernel, data_bytes=args.data_mib << 20, layout_skew=args.skew
    )
    print(f"kernel        : {result.kernel_name}")
    print(f"config        : {result.config_name} ({result.num_cores} cores)")
    print(f"data          : {result.bytes_in >> 20} MiB in, {result.bytes_out >> 20} MiB out")
    print(f"throughput    : {result.throughput_gbps:.2f} GB/s")
    print(f"limited by    : {result.limiter}")
    print(f"utilisation   : {result.mean_utilisation:.1%}")
    print(f"DRAM traffic  : {result.dram_traffic.total:.2f} B per input byte")
    return 0


def _parse_tenants(text: str):
    """Parse ``name:weight:kind[:kernel[:pages[:interarrival_us[:region]]]],...``."""
    from repro.serve import TenantSpec

    specs = []
    for chunk in text.split(","):
        parts = chunk.strip().split(":")
        if len(parts) < 3:
            raise SystemExit(
                f"bad tenant spec {chunk!r}; "
                "want name:weight:kind[:kernel[:pages[:us[:region]]]]"
            )
        kwargs = dict(name=parts[0], weight=float(parts[1]), kind=parts[2])
        if len(parts) > 3 and parts[3] not in ("", "-"):
            kwargs["kernel"] = parts[3]
        if len(parts) > 4:
            kwargs["pages_per_command"] = int(parts[4])
        if len(parts) > 5:
            kwargs["interarrival_ns"] = float(parts[5]) * 1e3
        if len(parts) > 6:
            kwargs["region_pages"] = int(parts[6])
        specs.append(TenantSpec(**kwargs))
    return specs


def _add_workload_args(
    parser,
    *,
    duration_us=None,
    seed=None,
    policy=None,
    policy_choices=("rr", "wrr", "drr"),
    tenants_help=None,
) -> None:
    """Register the flags shared by the workload-driving subcommands.

    Every simulation subcommand takes ``--config``; pass ``policy`` /
    ``tenants_help`` / ``duration_us`` / ``seed`` to opt into the other
    shared flags with per-command defaults (``None`` omits the flag).
    ``--policy`` means arbitration for the serving commands and scan
    placement for the SQL commands; ``policy_choices`` selects which.
    """
    parser.add_argument("--config", default="AssasinSb")
    parser.add_argument(
        "--sim-engine",
        default=None,
        choices=["reference", "fast"],
        help="event-loop engine: 'fast' is the calendar-queue loop with "
        "batched same-instant dispatch, bit-identical to 'reference'",
    )
    if policy is not None:
        parser.add_argument("--policy", default=policy, choices=list(policy_choices))
    if tenants_help is not None:
        parser.add_argument("--tenants", default="", help=tenants_help)
    if duration_us is not None:
        parser.add_argument("--duration-us", type=float, default=duration_us)
    if seed is not None:
        parser.add_argument("--seed", type=int, default=seed)


def _cmd_serve(args) -> int:
    from repro.config import ServeConfig, named_config
    from repro.serve import default_tenants, simulate_serve

    tenants = _parse_tenants(args.tenants) if args.tenants else default_tenants()
    serve_config = ServeConfig(
        queue_depth=args.queue_depth,
        arbitration=args.policy,
        max_inflight=args.max_inflight,
        quantum_pages=args.quantum_pages,
    )
    report = simulate_serve(
        named_config(args.config),
        tenants,
        serve_config,
        duration_ns=args.duration_us * 1e3,
        seed=args.seed,
    )
    print(report.render())
    return 0


def _cmd_faults(args) -> int:
    from repro.config import FaultConfig, ServeConfig, named_config
    from repro.faults import clean_baseline, run_campaign

    config = named_config(args.config)
    tenants = _parse_tenants(args.tenants) if args.tenants else None
    fault_config = FaultConfig(
        seed=args.seed,
        page_error_rate=args.page_error_rate,
        uncorrectable_rate=args.uncorrectable_rate,
        transient_fraction=args.transient_fraction,
        slow_read_rate=args.slow_read_rate,
        max_read_retries=args.read_retries,
        raid_k=args.raid_k,
    )
    serve_config = ServeConfig(
        arbitration=args.policy,
        command_timeout_ns=args.timeout_us * 1e3,
        max_command_retries=args.cmd_retries,
    )
    report = run_campaign(
        config,
        fault_config,
        tenants=tenants,
        serve_config=serve_config,
        duration_ns=args.duration_us * 1e3,
        seed=args.seed,
    )
    print(report.render())
    if args.baseline:
        clean = clean_baseline(
            config,
            tenants=tenants,
            serve_config=serve_config,
            duration_ns=args.duration_us * 1e3,
            seed=args.seed,
        )
        print()
        print("vs clean baseline:")
        for name, t in clean.tenants.items():
            faulty = report.serve.tenants[name]
            print(
                f"  {name:<10} p99 {t.p99_latency_ns / 1e3:8.1f} -> "
                f"{faulty.p99_latency_ns / 1e3:8.1f} us"
            )
        print(
            f"  goodput    {clean.goodput_gbps:.2f} -> "
            f"{report.serve.goodput_gbps:.2f} GB/s"
        )
    return 0 if report.healthy else 1


def _cmd_fleet(args) -> int:
    from repro.config import named_config
    from repro.fleet import FleetConfig, simulate_fleet

    tenants = _parse_tenants(args.tenants) if args.tenants else None
    fleet_config = FleetConfig(
        num_devices=args.devices,
        virtual_nodes=args.virtual_nodes,
        shard_pages=args.shard_pages,
        placement=args.placement,
        raid_k=args.raid_k,
        max_inflight_per_device=args.max_inflight,
        hedging=not args.no_hedge,
        slow_device=args.slow_device,
        slow_read_rate=args.slow_read_rate,
        kill_device=args.kill_device,
        kill_at_ns=args.kill_at_us * 1e3,
    )
    sim = None
    if args.shard_workers > 0:
        from repro.config import SimConfig

        sim = SimConfig(
            engine=args.sim_engine or "reference",
            shard_workers=args.shard_workers,
            shard_window_ns=args.shard_window_us * 1e3,
        )
    report = simulate_fleet(
        named_config(args.config),
        fleet_config,
        tenants=tenants,
        duration_ns=args.duration_us * 1e3,
        seed=args.seed,
        sim=sim,
    )
    print(report.render())
    healthy = report.integrity_pages_bad == 0 and report.corruption_events == 0
    return 0 if healthy else 1


def _cmd_zns(args) -> int:
    from repro.zns import ZnsConfig, run_zns

    config = ZnsConfig(
        seed=args.seed,
        duration_ns=args.duration_us * 1e3,
        num_tenants=args.tenants,
        put_fraction=args.put_fraction,
        memtable_records=args.memtable_records,
        max_open_zones=args.max_open_zones,
        compaction=args.policy,
    )
    report = run_zns(config)
    print(report.render())
    return 0


def _cmd_dse(args) -> int:
    from repro.dse import FULL_KERNELS, SweepSpec, render_table, report_json, run_sweep

    kernels = tuple(args.kernels) if args.kernels else None
    if kernels is None and args.full_suite:
        kernels = FULL_KERNELS
    kwargs = dict(
        cores=tuple(args.cores),
        geometries=tuple(args.geometries),
        pipeline_models=tuple(args.pipeline_models),
        arbitrations=tuple(args.arbitrations),
        data_bytes=args.data_mib << 20,
        sample_bytes=args.sample_kib << 10,
        seed=args.seed,
        serve_probe_ns=args.serve_probe_us * 1e3,
    )
    if kernels is not None:
        kwargs["kernels"] = kernels
    spec = SweepSpec(**kwargs)
    result = run_sweep(spec)
    print(render_table(result))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report_json(result))
        print(f"report written to {args.json}")
    return 0


def _cmd_trace(args) -> int:
    from repro.config import ServeConfig, named_config
    from repro.serve import default_tenants, simulate_serve
    from repro.telemetry import Telemetry, span_tracks, validate_chrome_trace

    tenants = _parse_tenants(args.tenants) if args.tenants else default_tenants()
    serve_config = ServeConfig(
        queue_depth=args.queue_depth,
        arbitration=args.policy,
        max_inflight=args.max_inflight,
    )
    telemetry = Telemetry.tracing("repro-serve")
    report = simulate_serve(
        named_config(args.config),
        tenants,
        serve_config,
        duration_ns=args.duration_us * 1e3,
        seed=args.seed,
        telemetry=telemetry,
    )
    trace = telemetry.tracer.to_chrome_trace()
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    telemetry.tracer.write(args.out)
    tracks = span_tracks(trace)
    print(f"trace written : {args.out} ({len(trace['traceEvents'])} events)")
    print(f"span tracks   : {len(tracks)} ({', '.join(tracks[:8])}{', ...' if len(tracks) > 8 else ''})")
    print(f"open it at    : https://ui.perfetto.dev or chrome://tracing")
    print()
    print(report.render())
    if args.counters:
        print()
        print(telemetry.counters.render())
    return 0


def _cmd_profile(args) -> int:
    from repro.config import named_config
    from repro.kernels import get_kernel
    from repro.telemetry import profile_kernel

    kernel = get_kernel(args.kernel)
    core = named_config(args.config).core
    profile = profile_kernel(kernel, core_config=core, sample_bytes=args.sample_kib << 10)
    print(profile.report(top=args.top))
    return 0


_FIGURES = {
    "5": ("repro.experiments.fig05", {}),
    "13": ("repro.experiments.fig13", {"data_bytes": 32 << 20}),
    "14": ("repro.experiments.fig14", {}),
    "15": ("repro.experiments.fig15", {}),
    "16": ("repro.experiments.fig16", {}),
    "17": ("repro.experiments.fig16", {}),
    "18": ("repro.experiments.fig16", {}),
    "19": ("repro.experiments.fig19", {}),
    "20": ("repro.experiments.fig20", {}),
    "21": ("repro.experiments.fig21", {}),
    "22": ("repro.experiments.fig22", {}),
    "flash-scaling": ("repro.experiments.ext_flash", {}),
    "mixed-io": ("repro.experiments.ext_mixed", {}),
    "write-path": ("repro.experiments.ext_writepath", {}),
}


def _cmd_figure(args) -> int:
    import importlib

    try:
        module_name, kwargs = _FIGURES[args.number]
    except KeyError:
        print(f"unknown figure {args.number}; known: {', '.join(sorted(_FIGURES))}")
        return 2
    module = importlib.import_module(module_name)
    result = module.run(**kwargs)
    print(module.render(result))
    return 0


def _cmd_table(args) -> int:
    from repro.experiments import fig22, tables

    if args.number == "1":
        print(tables.render_table1())
    elif args.number == "2":
        print(tables.render_table2())
    elif args.number == "3":
        print(tables.render_table3())
    elif args.number == "4":
        print(tables.render_table4())
    elif args.number == "5":
        print(fig22.render(fig22.run()))
    else:
        print("unknown table; known: 1, 2, 3, 4, 5")
        return 2
    return 0


def _sql_session_from_args(args):
    from repro.config import named_config
    from repro.sql import SqlSession

    tenants = _parse_tenants(args.tenants) if args.tenants else []
    return SqlSession(
        named_config(args.config),
        gen_scale_factor=args.scale_factor,
        target_scale_factor=args.target_scale_factor,
        seed=args.seed,
        policy=args.policy,
        tenants=tenants,
        duration_ns=args.duration_us * 1e3,
    )


def _cmd_tpch(args) -> int:
    from repro.analytics.queries import query_numbers
    from repro.sql.tpch import TPCH_SQL

    session = _sql_session_from_args(args)
    numbers = args.queries or query_numbers()
    for n in numbers:
        record = session.drain(session.submit(TPCH_SQL[n]))
        result = record.result.table
        sites = "".join(p.site[0].upper() for p in record.placements)
        print(
            f"Q{n:2d}: {result.nrows:6d} rows  {record.latency_ns / 1e6:8.3f} ms "
            f"[{sites}]  columns={tuple(result.columns)}"
        )
    return 0


def _cmd_sql(args) -> int:
    from repro.sql import SqlRepl

    repl = SqlRepl(_sql_session_from_args(args))
    if args.execute:
        return repl.run_batch(args.execute)
    if args.file:
        with open(args.file) as handle:
            text = handle.read()
        return repl.run_batch(text)
    return repl.run_interactive()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ASSASIN (MICRO 2022) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list kernels and configurations").set_defaults(
        fn=_cmd_list
    )

    offload = sub.add_parser("offload", help="simulate one offload")
    offload.add_argument("--kernel", default="stat")
    offload.add_argument("--config", default="AssasinSb")
    offload.add_argument("--data-mib", type=int, default=32)
    offload.add_argument("--skew", type=float, default=0.0)
    offload.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="functional execution engine (architecturally identical; "
        "'reference' is the slower per-instruction ground truth)",
    )
    offload.set_defaults(fn=_cmd_offload)

    serve = sub.add_parser("serve", help="multi-tenant QoS serving simulation")
    _add_workload_args(
        serve,
        duration_us=2_000.0,
        seed=42,
        policy="wrr",
        tenants_help="comma-separated name:weight:kind[:kernel[:pages[:interarrival_us]]] "
        "(default: 3-tenant mixed scomp+read mix)",
    )
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--max-inflight", type=int, default=8)
    serve.add_argument("--quantum-pages", type=int, default=8)
    serve.set_defaults(fn=_cmd_serve)

    faults = sub.add_parser("faults", help="seeded fault campaign with RAID recovery")
    _add_workload_args(
        faults,
        duration_us=500.0,
        seed=1,
        policy="wrr",
        tenants_help="same syntax as `serve`; default: small reader+scanner mix",
    )
    faults.add_argument("--page-error-rate", type=float, default=0.02)
    faults.add_argument("--uncorrectable-rate", type=float, default=0.005)
    faults.add_argument("--transient-fraction", type=float, default=0.5)
    faults.add_argument("--slow-read-rate", type=float, default=0.01)
    faults.add_argument("--read-retries", type=int, default=3)
    faults.add_argument("--raid-k", type=int, default=4)
    faults.add_argument("--timeout-us", type=float, default=0.0)
    faults.add_argument("--cmd-retries", type=int, default=1)
    faults.add_argument(
        "--baseline", action="store_true", help="also run and compare a clean run"
    )
    faults.set_defaults(fn=_cmd_faults)

    fleet = sub.add_parser(
        "fleet", help="rack-scale multi-device fleet simulation"
    )
    _add_workload_args(
        fleet,
        duration_us=400.0,
        seed=7,
        tenants_help="same syntax as `serve`; default: hot scomp + reader + writer mix",
    )
    fleet.add_argument("--devices", type=int, default=4, help="peer SSD count")
    fleet.add_argument(
        "--virtual-nodes", type=int, default=64, help="ring positions per device"
    )
    fleet.add_argument(
        "--shard-pages", type=int, default=64, help="fleet-LPA pages per shard"
    )
    fleet.add_argument(
        "--raid-k", type=int, default=3, help="data pages per cross-device stripe"
    )
    fleet.add_argument(
        "--placement",
        default="hash",
        choices=["hash", "load"],
        help="'hash': ring home; 'load': least-loaded ring candidate for writes",
    )
    fleet.add_argument("--max-inflight", type=int, default=8)
    fleet.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        help="run independent devices in this many worker processes "
        "(0 = shared event loop; needs --placement hash, --no-hedge, "
        "and no fault/kill flags)",
    )
    fleet.add_argument(
        "--shard-window-us",
        type=float,
        default=200.0,
        help="conservative synchronisation window for sharded execution",
    )
    fleet.add_argument(
        "--no-hedge", action="store_true", help="disable hedged (duplicate) requests"
    )
    fleet.add_argument(
        "--slow-device", type=int, default=-1, help="index of a straggler device"
    )
    fleet.add_argument(
        "--slow-read-rate",
        type=float,
        default=0.2,
        help="slow-read probability on the straggler (with --slow-device)",
    )
    fleet.add_argument(
        "--kill-device", type=int, default=-1, help="hard-fail this device mid-run"
    )
    fleet.add_argument(
        "--kill-at-us",
        type=float,
        default=150.0,
        help="when the killed device dies (with --kill-device)",
    )
    fleet.set_defaults(fn=_cmd_fleet)

    zns = sub.add_parser(
        "zns", help="zoned-namespace LSM campaign with compaction offload"
    )
    zns.add_argument("--duration-us", type=float, default=4_000.0)
    zns.add_argument("--seed", type=int, default=7)
    zns.add_argument(
        "--sim-engine",
        default=None,
        choices=["reference", "fast"],
        help="event-loop engine (bit-identical results either way)",
    )
    zns.add_argument(
        "--policy",
        default="auto",
        choices=["host", "device", "auto"],
        help="compaction placement: on the host, in the SSD, or cost-driven",
    )
    zns.add_argument("--tenants", type=int, default=4, help="put/get tenant count")
    zns.add_argument("--put-fraction", type=float, default=0.9)
    zns.add_argument("--memtable-records", type=int, default=1024)
    zns.add_argument("--max-open-zones", type=int, default=8)
    zns.set_defaults(fn=_cmd_zns)

    dse = sub.add_parser(
        "dse", help="design-space sweep with Pareto-frontier report"
    )
    dse.add_argument(
        "--cores", type=int, nargs="+", default=[4, 8], help="engine counts to sweep"
    )
    dse.add_argument(
        "--geometries",
        nargs="+",
        default=["sb-S8P2", "sb-S8P4", "sp"],
        help="data-path geometries: 'sp' or 'sb-S<streams>P<pages>'",
    )
    dse.add_argument(
        "--pipeline-models",
        nargs="+",
        default=["static", "predictive"],
        choices=["static", "predictive"],
        help="core timing models to sweep",
    )
    dse.add_argument(
        "--arbitrations",
        nargs="+",
        default=["wrr"],
        choices=["rr", "wrr", "drr"],
        help="arbitration policies (>1 turns on the serving probe)",
    )
    dse.add_argument(
        "--kernels", nargs="+", default=[], help="kernel suite (default: stat raid4 psf)"
    )
    dse.add_argument(
        "--full-suite", action="store_true", help="use the full fig13/fig14 suite"
    )
    dse.add_argument("--data-mib", type=int, default=8, help="offload size per kernel")
    dse.add_argument("--sample-kib", type=int, default=16, help="pricing-sample window")
    dse.add_argument("--seed", type=int, default=7)
    dse.add_argument(
        "--serve-probe-us",
        type=float,
        default=0.0,
        help="serving-probe duration per point (0: only when >1 arbitration)",
    )
    dse.add_argument("--json", default="", help="also write the JSON report here")
    dse.set_defaults(fn=_cmd_dse)

    trace = sub.add_parser(
        "trace", help="serve run with tracing on; writes Chrome/Perfetto JSON"
    )
    _add_workload_args(
        trace,
        duration_us=300.0,
        seed=42,
        policy="wrr",
        tenants_help="same syntax as `serve`; default: 3-tenant mixed scomp+read mix",
    )
    trace.add_argument("--queue-depth", type=int, default=64)
    trace.add_argument("--max-inflight", type=int, default=8)
    trace.add_argument("--out", default="trace.json", help="output trace path")
    trace.add_argument(
        "--counters", action="store_true", help="also dump the counter registry"
    )
    trace.set_defaults(fn=_cmd_trace)

    profile = sub.add_parser(
        "profile", help="ISA-level cycle attribution for one kernel"
    )
    _add_workload_args(profile)
    profile.add_argument("--kernel", default="scan")
    profile.add_argument(
        "--sample-kib", type=int, default=0, help="input window KiB (0: kernel default)"
    )
    profile.add_argument("--top", type=int, default=10, help="rows in the hot-spot tables")
    profile.set_defaults(fn=_cmd_profile)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=sorted(_FIGURES))
    figure.set_defaults(fn=_cmd_figure)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", choices=["1", "2", "3", "4", "5"])
    table.set_defaults(fn=_cmd_table)

    tpch = sub.add_parser("tpch", help="run TPC-H queries on the live device")
    tpch.add_argument("queries", nargs="*", type=int)
    _add_workload_args(
        tpch,
        duration_us=50_000.0,
        seed=7,
        policy="auto",
        policy_choices=("host", "device", "auto"),
        tenants_help="background tenants, same syntax as `serve`",
    )
    tpch.add_argument("--scale-factor", type=float, default=0.004)
    tpch.add_argument(
        "--target-scale-factor",
        type=float,
        default=None,
        help="scale whose timing is modelled (default: --scale-factor)",
    )
    tpch.set_defaults(fn=_cmd_tpch)

    sql = sub.add_parser("sql", help="SQL shell on the simulated device")
    _add_workload_args(
        sql,
        duration_us=50_000.0,
        seed=7,
        policy="auto",
        policy_choices=("host", "device", "auto"),
        tenants_help="background tenants, same syntax as `serve`",
    )
    sql.add_argument("-e", "--execute", default="", help="run this statement batch and exit")
    sql.add_argument("-f", "--file", default="", help="run statements from a file and exit")
    sql.add_argument("--scale-factor", type=float, default=0.004)
    sql.add_argument(
        "--target-scale-factor",
        type=float,
        default=None,
        help="scale whose timing is modelled (default: --scale-factor)",
    )
    sql.set_defaults(fn=_cmd_sql)

    reproduce = sub.add_parser(
        "reproduce", help="run every table and figure; write one report"
    )
    reproduce.add_argument("--out", default="reproduction_report.txt")
    reproduce.add_argument("--fast", action="store_true", help="smaller datasets")
    reproduce.set_defaults(fn=_cmd_reproduce)
    return parser


def _cmd_reproduce(args) -> int:
    from repro.experiments.runner import reproduce_all

    report = reproduce_all(fast=args.fast)
    with open(args.out, "w") as handle:
        handle.write(report)
    print(f"report written to {args.out} ({len(report.splitlines())} lines)")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "sim_engine", None):
        from repro.sim import set_default_engine

        set_default_engine(args.sim_engine)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
