"""The unified discrete-event simulation kernel (`repro.sim`).

Every timed component of the reproduction — flash channel buses, plane
timelines, the host PCIe link, the crossbar hop, stream cores, firmware
command flows, the serving layer, garbage collection, and the recovery
ladder — advances on one :class:`Simulator` clock measured in **integer
nanoseconds** with deterministic ``(time, priority, seq)`` tie-breaking.

Three primitives cover the device:

* :class:`Simulator` — the event loop: ``schedule``/``schedule_at`` for
  callbacks, :meth:`Simulator.spawn` for generator *processes* that
  ``yield`` waits (firmware command flows, background IO, GC passes).
* :class:`FifoResource` — a single greedy FIFO reservation timeline
  (a channel bus, the host link, a crossbar port): requests are granted
  in call order, each occupying ``[start, done)``; busy intervals are
  tracked so utilisation within any window is exact.
* :class:`PooledResource` — N unit timelines with least-loaded or
  explicit-unit selection (flash planes, the stream-core pool).

Resources grant *reservations* synchronously — acquiring returns the
grant's start/done instants immediately, in issue order — while processes
advance the shared clock by waiting on those instants.  This split is what
lets the greedy MQSim-style timelines and the event-driven control plane
coexist on one coherent timeline (the Gem5+MQSim composition of the
paper's evaluation).
"""

from repro.sim.kernel import (
    ENGINES,
    Event,
    Process,
    SimProcessError,
    SimTimeError,
    Simulator,
    as_ns,
    default_engine,
    set_default_engine,
    use_engine,
)
from repro.sim.resources import FifoResource, Grant, PooledResource

__all__ = [
    "ENGINES",
    "Event",
    "FifoResource",
    "Grant",
    "PooledResource",
    "Process",
    "SimProcessError",
    "SimTimeError",
    "Simulator",
    "as_ns",
    "default_engine",
    "set_default_engine",
    "use_engine",
]
