"""The discrete-event kernel: integer-nanosecond clock, deterministic heap.

Determinism rules (relied on by the same-seed trace-diff tests):

1. Time is an **integer number of nanoseconds**.  Fractional instants from
   analytic models (cycles-per-byte compute spans, Poisson inter-arrivals)
   are rounded to the nearest nanosecond at the scheduling boundary by
   :func:`as_ns`.
2. Events are ordered by ``(time_ns, priority, seq)``: lower priority
   values first, ties broken by global insertion order.  Two runs issuing
   the same schedule calls therefore dispatch in the same order.
3. Scheduling a non-finite instant (NaN/inf) raises immediately instead of
   silently corrupting the heap order.

Two interchangeable engines implement that contract:

* ``"reference"`` — the original single ``heapq`` ordered by
  ``(time_ns, priority, seq)``.  Simple, obviously correct, and the
  baseline every optimisation is differentially tested against.
* ``"fast"`` — a calendar queue: a dict of per-instant *buckets* plus a
  small heap of distinct pending times.  A bucket is a plain list of
  payloads (an :class:`Event`, or the :class:`Process` handle itself for
  resumes — no per-entry tuple, seq draw, or closure is allocated on the
  hot path).  All events of one instant dispatch as a batch by plain
  iteration with **zero** comparisons or heap traffic.  Dispatch order is
  bit-identical to the reference: appends occur in global insertion
  order, so a bucket is already in ``(priority, seq)`` order unless an
  append carried a lower priority than its tail, in which case one lazy
  *stable* sort by priority restores it (stability supplies the seq
  tie-break).

Engine choice is per-:class:`Simulator` (the ``engine=`` argument) with a
module-level default so campaign code that constructs simulators
internally inherits it — see :func:`set_default_engine` /
:func:`use_engine`.  Cancellation (:meth:`Event.cancel`) is honoured by
both engines via lazy deletion: a cancelled event stays queued until its
instant but is skipped without being counted, traced, or dispatched.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import math
import operator
from typing import Callable, Generator, List, Optional, Set, Tuple, Union

from repro.errors import ReproError

ENGINES = ("reference", "fast")

_default_engine = "reference"


def default_engine() -> str:
    """The engine newly constructed :class:`Simulator` instances use."""
    return _default_engine


def set_default_engine(name: str) -> str:
    """Set the module-wide default engine; returns the previous default.

    Campaign layers (serve, faults, fleet, zns, firmware) construct their
    own ``Simulator()`` internally; this is how a CLI flag or test reaches
    them without threading an argument through every layer.
    """
    global _default_engine
    if name not in ENGINES:
        raise ValueError(f"unknown sim engine {name!r}; expected one of {ENGINES}")
    previous = _default_engine
    _default_engine = name
    return previous


@contextlib.contextmanager
def use_engine(name: str):
    """Context manager: run a block under a different default engine."""
    previous = set_default_engine(name)
    try:
        yield
    finally:
        set_default_engine(previous)


class SimTimeError(ReproError, ValueError):
    """An invalid simulation instant (non-finite, or in the past)."""


class SimProcessError(ReproError, RuntimeError):
    """A process body raised; the original exception is the ``__cause__``."""


def as_ns(value: Union[int, float]) -> int:
    """Round an instant/duration to integer nanoseconds, rejecting NaN/inf."""
    if isinstance(value, int):
        return value
    if not math.isfinite(value):
        raise SimTimeError(f"non-finite simulation time {value!r}")
    return int(round(value))


class Event:
    """A scheduled callback at an absolute simulation time (integer ns).

    The returned handle supports :meth:`cancel`; cancellation is lazy —
    the entry stays queued until its instant comes up and is then skipped
    (not dispatched, not counted in ``processed``, not traced).
    """

    __slots__ = ("time_ns", "seq", "action", "label", "priority", "cancelled", "fired")

    def __init__(
        self,
        time_ns: int,
        seq: int,
        action: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.action = action
        self.label = label
        self.priority = priority
        self.cancelled = False
        self.fired = False

    def cancel(self) -> bool:
        """Revoke the event; returns False if it already fired (or was
        cancelled before).  Safe to call from any callback, including one
        running at the same instant the event is scheduled for."""
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return (
            f"Event(time_ns={self.time_ns}, seq={self.seq}, "
            f"priority={self.priority}, label={self.label!r}, {state})"
        )


class Process:
    """Handle for a generator-based process spawned on a :class:`Simulator`.

    The generator *yields waits*: an integer/float delay in nanoseconds, or
    the sentinel pairs produced by :meth:`Simulator.wait` /
    :meth:`Simulator.wait_until`.  Between waits the process body runs
    synchronously at the current simulation instant (issuing resource
    reservations, mutating state, scheduling callbacks).
    """

    __slots__ = ("label", "alive", "_gen")

    #: Process resumes always dispatch at the default priority; exposing it
    #: as a class attribute lets the fast engine sort mixed Event/Process
    #: buckets with one shared ``attrgetter("priority")`` key.
    priority = 0

    def __init__(self, gen: Generator, label: str) -> None:
        self._gen = gen
        self.label = label
        self.alive = True


#: Wait requests a process generator may yield.
_WAIT_DELAY = "delay"
_WAIT_UNTIL = "until"

#: Internal marker: the generator finished (distinct from any yieldable value).
_STOPPED = object()

#: Stable-sort key for calendar buckets.  Entries are appended in global
#: seq order, so a *stable* sort by priority alone reproduces the full
#: (priority, seq) order without materialising per-entry seq tuples.
_PRIORITY_OF = operator.attrgetter("priority")


class Simulator:
    """Deterministic event loop shared by every timed subsystem.

    ``tracer`` (a :class:`repro.telemetry.tracer.NullTracer` by default)
    gets one instant event per dispatched callback on the ``scheduler``
    track, named by the event's label — telemetry only observes, it never
    changes ordering or timing.

    ``engine`` selects the dispatch implementation (``"reference"`` or
    ``"fast"``); both produce bit-identical dispatch order, clock values
    and ``processed`` counts.  ``None`` uses the module default
    (:func:`set_default_engine`).
    """

    def __init__(self, tracer=None, engine: Optional[str] = None) -> None:
        from repro.telemetry.tracer import NULL_TRACER

        if tracer is None:
            tracer = NULL_TRACER
        if engine is None:
            engine = _default_engine
        if engine not in ENGINES:
            raise ValueError(f"unknown sim engine {engine!r}; expected one of {ENGINES}")
        self.engine = engine
        self._fast = engine == "fast"
        # Reference state: one heap of (time, priority, seq, Event).
        self._heap: List[Tuple[int, int, int, Event]] = []
        # Fast state: calendar buckets keyed by instant.  Each bucket is a
        # plain list of payloads — an Event or, for process resumes, the
        # Process handle itself; no per-entry tuple or seq is allocated.
        # Appends happen in global insertion (seq) order, so list order is
        # (priority, seq) order until an append carries a *lower* priority
        # than the tail; ``_unsorted`` marks such buckets for one lazy
        # stable sort by priority (stability restores the seq tie-break).
        # ``_times`` is a heap of the distinct instants owning a bucket.
        self._buckets: dict = {}
        self._times: List[int] = []
        self._unsorted: Set[int] = set()
        self._size = 0
        # While the fast loop dispatches the bucket at ``_active_time``,
        # same-instant insertions append straight to ``_active_bucket``;
        # ``_active_dirty`` triggers a re-sort of the not-yet-dispatched
        # tail if such an append broke (priority, seq) order.
        self._active_time = -1
        self._active_bucket: Optional[list] = None
        self._active_dirty = False
        self._counter = itertools.count()
        self._tracer = tracer
        self._null_tracer = tracer is NULL_TRACER
        self.now: int = 0
        self.processed: int = 0

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self,
        delay_ns: Union[int, float],
        action: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` to run ``delay_ns`` after the current time."""
        if isinstance(delay_ns, float) and not math.isfinite(delay_ns):
            raise SimTimeError(f"cannot schedule a non-finite delay ({delay_ns!r})")
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, action, label, priority)

    def schedule_at(
        self,
        time_ns: Union[int, float],
        action: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at an absolute time, which must not precede now."""
        when = as_ns(time_ns)
        if when < self.now:
            raise ValueError(f"cannot schedule at {time_ns} before now={self.now}")
        seq = next(self._counter)
        event = Event(when, seq, action, label, priority)
        if self._fast:
            self._push_fast(when, priority, event)
        else:
            heapq.heappush(self._heap, (when, priority, seq, event))
        return event

    def _push_fast(self, when: int, priority: int, payload) -> None:
        """Insert a payload into the calendar queue (fast engine only)."""
        if when == self._active_time:
            bucket = self._active_bucket
            if bucket and priority < bucket[-1].priority:
                self._active_dirty = True
            bucket.append(payload)
        else:
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = [payload]
                heapq.heappush(self._times, when)
            else:
                if priority < bucket[-1].priority:
                    self._unsorted.add(when)
                bucket.append(payload)
        self._size += 1

    # -- processes ------------------------------------------------------------

    def wait(self, delay_ns: Union[int, float]) -> Tuple[str, Union[int, float]]:
        """A wait request: resume the yielding process after ``delay_ns``."""
        return (_WAIT_DELAY, delay_ns)

    def wait_until(self, time_ns: Union[int, float]) -> Tuple[str, Union[int, float]]:
        """A wait request: resume the yielding process at ``time_ns``.

        Instants already in the past resume at the current time — processes
        computed from analytic schedules may legitimately "wake" at an
        instant the clock has just passed.
        """
        return (_WAIT_UNTIL, time_ns)

    def spawn(self, gen: Generator, label: str = "process") -> Process:
        """Run ``gen`` as a process, starting at the current instant."""
        process = Process(gen, label)
        if self._fast:
            # No seq is drawn: bucket append order carries the tie-break,
            # and pushes happen in the same program order as the reference
            # engine's counter draws.
            self._push_fast(self.now, 0, process)
        else:
            self.schedule(0, lambda: self._resume(process), label=label)
        return process

    def _resume(self, process: Process) -> None:
        try:
            request = next(process._gen)
        except StopIteration:
            process.alive = False
            return
        except Exception as err:
            # A crashed process must not look schedulable, and the traceback
            # must say *which* process died and when.
            process.alive = False
            raise SimProcessError(
                f"process {process.label!r} raised at t={self.now}ns: {err!r}"
            ) from err
        if isinstance(request, tuple) and len(request) == 2 and request[0] in (
            _WAIT_DELAY,
            _WAIT_UNTIL,
        ):
            kind, value = request
        else:
            kind, value = _WAIT_DELAY, request
        if kind == _WAIT_DELAY:
            when = self.now + as_ns(value)
        else:
            when = max(self.now, as_ns(value))
        if self._fast:
            if when < self.now:
                raise ValueError(f"cannot schedule at {when} before now={self.now}")
            self._push_fast(when, 0, process)
        else:
            self.schedule_at(when, lambda: self._resume(process), label=process.label)

    # -- the loop -------------------------------------------------------------

    def peek_time(self) -> Optional[int]:
        """Time of the next pending live event, or None if the queue is empty."""
        if self._fast:
            times, buckets = self._times, self._buckets
            while times:
                when = times[0]
                bucket = buckets.get(when)
                live = [
                    payload
                    for payload in bucket
                    if payload.__class__ is Process or not payload.cancelled
                ] if bucket else []
                if live:
                    if len(live) != len(bucket):
                        self._size -= len(bucket) - len(live)
                        buckets[when] = live
                    return when
                self._size -= len(bucket) if bucket else 0
                heapq.heappop(times)
                buckets.pop(when, None)
            return None
        heap = self._heap
        while heap:
            event = heap[0][3]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None

    def step(self) -> bool:
        """Run the next live event; returns False when none remain.

        Cancelled entries encountered on the way are discarded without
        advancing the clock or counting toward ``processed``.
        """
        if self._fast:
            return self._step_fast()
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.fired = True
            self.now = event.time_ns
            self.processed += 1
            self._tracer.instant("scheduler", event.label or "event", event.time_ns)
            event.action()
            return True
        return False

    def _step_fast(self) -> bool:
        times, buckets = self._times, self._buckets
        while times:
            when = times[0]
            bucket = buckets.get(when)
            if not bucket:
                heapq.heappop(times)
                buckets.pop(when, None)
                continue
            if when in self._unsorted:
                self._unsorted.discard(when)
                bucket.sort(key=_PRIORITY_OF)
            payload = bucket.pop(0)
            self._size -= 1
            if not bucket:
                heapq.heappop(times)
                del buckets[when]
            if payload.__class__ is Process:
                self.now = when
                self.processed += 1
                self._tracer.instant("scheduler", payload.label or "event", when)
                self._resume(payload)
                return True
            if payload.cancelled:
                continue
            payload.fired = True
            self.now = when
            self.processed += 1
            self._tracer.instant("scheduler", payload.label or "event", when)
            payload.action()
            return True
        return False

    def run(
        self,
        until_ns: Optional[Union[int, float]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the queue, optionally stopping at a time or event budget."""
        bound = None if until_ns is None else as_ns(until_ns)
        if self._fast:
            self._run_fast(bound, max_events)
            return
        executed = 0
        heap = self._heap
        while heap:
            top = heap[0]
            if top[3].cancelled:
                heapq.heappop(heap)
                continue
            if bound is not None and top[0] > bound:
                self.now = bound
                return
            if max_events is not None and executed >= max_events:
                return
            self.step()
            executed += 1
        if bound is not None and bound > self.now:
            self.now = bound

    def _process_error(self, process: Process, err: BaseException) -> None:
        """Cold path: a process body raised — mark it dead, add context."""
        process.alive = False
        raise SimProcessError(
            f"process {process.label!r} raised at t={self.now}ns: {err!r}"
        ) from err

    def _wake_time(self, request, now: int) -> int:
        """Decode a wait request yielded by a process into an absolute ns."""
        if isinstance(request, tuple) and len(request) == 2 and request[0] in (
            _WAIT_DELAY,
            _WAIT_UNTIL,
        ):
            kind, value = request
            if kind == _WAIT_DELAY:
                when = now + as_ns(value)
            else:
                when = max(now, as_ns(value))
        else:
            when = now + as_ns(request)
        if when < now:
            raise ValueError(f"cannot schedule at {when} before now={now}")
        return when

    def _run_fast(self, bound: Optional[int], max_events: Optional[int]) -> None:
        """Batched calendar-queue dispatch (bit-identical to the reference).

        Pops one *instant* at a time and dispatches its whole bucket by
        index iteration; same-instant insertions made by the callbacks
        land in the live bucket (re-sorting the undispatched tail only if
        an append actually broke (priority, seq) order, which the common
        homogeneous-priority batch never does).  Process resumes are fully
        inlined: no per-wait ``Event``/closure allocation, no method-call
        round trip — the dominant cost left is the process body itself.
        """
        times = self._times
        buckets = self._buckets
        buckets_get = buckets.get
        unsorted_times = self._unsorted
        tracer = self._tracer
        tracing = not self._null_tracer
        pop_time = heapq.heappop
        push_time = heapq.heappush
        processed = self.processed
        executed = 0
        unbounded = bound is None
        no_budget = max_events is None
        if no_budget and not tracing:
            # Tight variant for the campaign hot case (null tracer, no
            # event budget): per-entry work is one FOR_ITER, a class test,
            # and the payload itself.  Semantics are identical to the
            # generic loop below — appends made by callbacks land on the
            # live bucket and are picked up by the same ``for`` iteration.
            while times:
                when = times[0]
                if not unbounded and when > bound:
                    self.now = bound
                    self.processed = processed
                    return
                pop_time(times)
                bucket = buckets.pop(when)
                if when in unsorted_times:
                    unsorted_times.discard(when)
                    bucket.sort(key=_PRIORITY_OF)
                previous_now = self.now
                before = processed
                self.now = when
                self._active_time = when
                self._active_bucket = bucket
                self._active_dirty = False
                pos = 0
                pushed = 0
                for payload in bucket:
                    pos += 1
                    if payload.__class__ is Process:
                        processed += 1
                        try:
                            request = next(payload._gen)
                        except StopIteration:
                            payload.alive = False
                            request = _STOPPED
                        except Exception as err:
                            self._size += pushed - pos
                            self.processed = processed
                            self._process_error(payload, err)
                        if request is not _STOPPED:
                            if request.__class__ is int and request >= 0:
                                wake = when + request
                            else:
                                wake = self._wake_time(request, when)
                            pushed += 1
                            if wake == when:
                                if bucket[-1].priority > 0:
                                    self._active_dirty = True
                                bucket.append(payload)
                            else:
                                target = buckets_get(wake)
                                if target is None:
                                    buckets[wake] = [payload]
                                    push_time(times, wake)
                                else:
                                    if target[-1].priority > 0:
                                        unsorted_times.add(wake)
                                    target.append(payload)
                    elif not payload.cancelled:
                        payload.fired = True
                        processed += 1
                        self.processed = processed
                        payload.action()
                    if self._active_dirty:
                        self._active_dirty = False
                        tail = bucket[pos:]
                        tail.sort(key=_PRIORITY_OF)
                        bucket[pos:] = tail
                self._size += pushed - pos
                self._active_time = -1
                self._active_bucket = None
                if processed == before:
                    # Every entry at this instant was cancelled: the
                    # reference discards them without advancing the clock.
                    self.now = previous_now
            self.processed = processed
            if not unbounded and bound > self.now:
                self.now = bound
            return
        while times:
            when = times[0]
            if not unbounded and when > bound:
                self.now = bound
                self.processed = processed
                return
            pop_time(times)
            bucket = buckets.pop(when)
            if when in unsorted_times:
                unsorted_times.discard(when)
                bucket.sort(key=_PRIORITY_OF)
            previous_now = self.now
            before = processed
            self.now = when
            self._active_time = when
            self._active_bucket = bucket
            self._active_dirty = False
            pos = 0
            pushed = 0
            while pos < len(bucket):
                if self._active_dirty:
                    tail = bucket[pos:]
                    tail.sort(key=_PRIORITY_OF)
                    bucket[pos:] = tail
                    self._active_dirty = False
                if not no_budget and executed >= max_events:
                    # Re-shelve the undispatched (sorted) tail and stop.
                    rest = bucket[pos:]
                    self._active_time = -1
                    self._active_bucket = None
                    if rest:
                        buckets[when] = rest
                        push_time(times, when)
                    self._size += pushed - pos
                    self.processed = processed
                    if processed == before:
                        self.now = previous_now
                    return
                payload = bucket[pos]
                pos += 1
                if payload.__class__ is Process:
                    processed += 1
                    executed += 1
                    if tracing:
                        tracer.instant("scheduler", payload.label or "event", when)
                    # Inlined process resume + calendar push.
                    try:
                        request = next(payload._gen)
                    except StopIteration:
                        payload.alive = False
                        continue
                    except Exception as err:
                        self._size += pushed - pos
                        self.processed = processed
                        self._process_error(payload, err)
                    req_cls = request.__class__
                    if req_cls is int:
                        wake = when + request
                        if request < 0:
                            wake = self._wake_time(request, when)  # raises
                    else:
                        wake = self._wake_time(request, when)
                    pushed += 1
                    if wake == when:
                        if bucket[-1].priority > 0:
                            self._active_dirty = True
                        bucket.append(payload)
                    else:
                        target = buckets_get(wake)
                        if target is None:
                            buckets[wake] = [payload]
                            push_time(times, wake)
                        else:
                            if target[-1].priority > 0:
                                unsorted_times.add(wake)
                            target.append(payload)
                elif not payload.cancelled:
                    payload.fired = True
                    processed += 1
                    executed += 1
                    self.processed = processed
                    if tracing:
                        tracer.instant("scheduler", payload.label or "event", when)
                    payload.action()
            self._size += pushed - pos
            self._active_time = -1
            self._active_bucket = None
            if processed == before:
                # A fully-cancelled instant must not advance the clock.
                self.now = previous_now
        self.processed = processed
        if not unbounded and bound > self.now:
            self.now = bound

    def __len__(self) -> int:
        """Pending entries, *including* not-yet-reaped cancelled ones
        (cancellation is lazy; see :meth:`Event.cancel`)."""
        return self._size if self._fast else len(self._heap)

    def __bool__(self) -> bool:
        return self.__len__() > 0
