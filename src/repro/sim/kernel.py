"""The discrete-event kernel: integer-nanosecond clock, deterministic heap.

Determinism rules (relied on by the same-seed trace-diff tests):

1. Time is an **integer number of nanoseconds**.  Fractional instants from
   analytic models (cycles-per-byte compute spans, Poisson inter-arrivals)
   are rounded to the nearest nanosecond at the scheduling boundary by
   :func:`as_ns`.
2. Events are ordered by ``(time_ns, priority, seq)``: lower priority
   values first, ties broken by global insertion order.  Two runs issuing
   the same schedule calls therefore dispatch in the same order.
3. Scheduling a non-finite instant (NaN/inf) raises immediately instead of
   silently corrupting the heap order.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple, Union

from repro.errors import ReproError


class SimTimeError(ReproError, ValueError):
    """An invalid simulation instant (non-finite, or in the past)."""


def as_ns(value: Union[int, float]) -> int:
    """Round an instant/duration to integer nanoseconds, rejecting NaN/inf."""
    if isinstance(value, int):
        return value
    if not math.isfinite(value):
        raise SimTimeError(f"non-finite simulation time {value!r}")
    return int(round(value))


@dataclass(frozen=True)
class Event:
    """A scheduled callback at an absolute simulation time (integer ns)."""

    time_ns: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    priority: int = 0


class Process:
    """Handle for a generator-based process spawned on a :class:`Simulator`.

    The generator *yields waits*: an integer/float delay in nanoseconds, or
    the sentinel pairs produced by :meth:`Simulator.wait` /
    :meth:`Simulator.wait_until`.  Between waits the process body runs
    synchronously at the current simulation instant (issuing resource
    reservations, mutating state, scheduling callbacks).
    """

    __slots__ = ("label", "alive", "_gen")

    def __init__(self, gen: Generator, label: str) -> None:
        self._gen = gen
        self.label = label
        self.alive = True


#: Wait requests a process generator may yield.
_WAIT_DELAY = "delay"
_WAIT_UNTIL = "until"


class Simulator:
    """Deterministic event loop shared by every timed subsystem.

    ``tracer`` (a :class:`repro.telemetry.tracer.NullTracer` by default)
    gets one instant event per dispatched callback on the ``scheduler``
    track, named by the event's label — telemetry only observes, it never
    changes ordering or timing.
    """

    def __init__(self, tracer=None) -> None:
        if tracer is None:
            from repro.telemetry.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self._heap: List[Tuple[int, int, int, Event]] = []
        self._counter = itertools.count()
        self._tracer = tracer
        self.now: int = 0
        self.processed: int = 0

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self,
        delay_ns: Union[int, float],
        action: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` to run ``delay_ns`` after the current time."""
        if isinstance(delay_ns, float) and not math.isfinite(delay_ns):
            raise SimTimeError(f"cannot schedule a non-finite delay ({delay_ns!r})")
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, action, label, priority)

    def schedule_at(
        self,
        time_ns: Union[int, float],
        action: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at an absolute time, which must not precede now."""
        when = as_ns(time_ns)
        if when < self.now:
            raise ValueError(f"cannot schedule at {time_ns} before now={self.now}")
        event = Event(
            time_ns=when,
            seq=next(self._counter),
            action=action,
            label=label,
            priority=priority,
        )
        heapq.heappush(self._heap, (event.time_ns, event.priority, event.seq, event))
        return event

    # -- processes ------------------------------------------------------------

    def wait(self, delay_ns: Union[int, float]) -> Tuple[str, Union[int, float]]:
        """A wait request: resume the yielding process after ``delay_ns``."""
        return (_WAIT_DELAY, delay_ns)

    def wait_until(self, time_ns: Union[int, float]) -> Tuple[str, Union[int, float]]:
        """A wait request: resume the yielding process at ``time_ns``.

        Instants already in the past resume at the current time — processes
        computed from analytic schedules may legitimately "wake" at an
        instant the clock has just passed.
        """
        return (_WAIT_UNTIL, time_ns)

    def spawn(self, gen: Generator, label: str = "process") -> Process:
        """Run ``gen`` as a process, starting at the current instant."""
        process = Process(gen, label)
        self.schedule(0, lambda: self._resume(process), label=label)
        return process

    def _resume(self, process: Process) -> None:
        try:
            request = next(process._gen)
        except StopIteration:
            process.alive = False
            return
        if isinstance(request, tuple) and len(request) == 2 and request[0] in (
            _WAIT_DELAY,
            _WAIT_UNTIL,
        ):
            kind, value = request
        else:
            kind, value = _WAIT_DELAY, request
        if kind == _WAIT_DELAY:
            when = self.now + as_ns(value)
        else:
            when = max(self.now, as_ns(value))
        self.schedule_at(when, lambda: self._resume(process), label=process.label)

    # -- the loop -------------------------------------------------------------

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        _, _, _, event = heapq.heappop(self._heap)
        self.now = event.time_ns
        self.processed += 1
        self._tracer.instant("scheduler", event.label or "event", event.time_ns)
        event.action()
        return True

    def run(
        self,
        until_ns: Optional[Union[int, float]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the queue, optionally stopping at a time or event budget."""
        bound = None if until_ns is None else as_ns(until_ns)
        executed = 0
        while self._heap:
            next_time = self._heap[0][0]
            if bound is not None and next_time > bound:
                self.now = bound
                return
            if max_events is not None and executed >= max_events:
                return
            self.step()
            executed += 1
        if bound is not None and bound > self.now:
            self.now = bound

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
