"""Typed, telemetry-labelled resource primitives for the simulation kernel.

A *resource* owns a reservation timeline in integer nanoseconds.  Acquiring
grants the next free slot in strict call order (FIFO arbitration), exactly
the greedy discipline the per-component ``free_at_ns`` floats used to
implement — but with the bookkeeping (busy intervals, counters, trace
spans) centralised and exact.

Busy intervals are kept **coalesced**: a grant that starts exactly where
the previous one ended extends it in place, so a saturated bus stores one
interval, not one per transfer.  :meth:`FifoResource.busy_within` computes
the exact overlap of the busy set with ``[0, until_ns]`` — the fix for the
historical ``ChannelBus.utilisation`` over-count, where a transfer
straddling the window's end was counted in full and the over-count then
hidden by a ``min(1.0, ...)`` clamp.
"""

from __future__ import annotations

import bisect
from typing import List, NamedTuple, Optional, Tuple

from repro.sim.kernel import as_ns


class Grant(NamedTuple):
    """One granted reservation on a resource timeline."""

    start_ns: int
    done_ns: int
    unit: int = 0


class _Timeline:
    """One FIFO reservation lane: free-at pointer plus coalesced intervals."""

    __slots__ = ("free_at_ns", "busy_ns", "grants", "_starts", "_intervals")

    def __init__(self) -> None:
        self.free_at_ns: int = 0
        self.busy_ns: int = 0
        self.grants: int = 0
        self._starts: List[int] = []
        self._intervals: List[Tuple[int, int]] = []

    def reserve(self, ready_ns: int, duration_ns: int) -> Grant:
        start = max(ready_ns, self.free_at_ns)
        done = start + duration_ns
        self.free_at_ns = done
        self.busy_ns += duration_ns
        self.grants += 1
        if duration_ns > 0:
            if self._intervals and self._intervals[-1][1] == start:
                self._intervals[-1] = (self._intervals[-1][0], done)
            else:
                self._starts.append(start)
                self._intervals.append((start, done))
        return Grant(start, done)

    def reserve_backfill(self, ready_ns: int, duration_ns: int) -> Grant:
        """Reserve the *earliest* idle slot >= ``ready_ns`` that fits.

        Strict FIFO order penalises requesters whose data becomes ready
        early: once one grant with a far-future ready time books the lane,
        every later call queues behind it even though the lane sits idle
        in between. A DMA engine serves transfers in readiness order, so
        this variant first-fits into the idle gaps the FIFO pointer left
        behind and only falls back to the tail. When ready times arrive
        non-decreasing (the offload paths), no usable gap ever exists and
        the result is identical to :meth:`reserve`.
        """
        if duration_ns > 0 and self._intervals:
            # Candidate gaps: before the first interval, and between
            # consecutive intervals. Coalescing keeps this list short even
            # on saturated lanes, so the scan is cheap.
            idx = max(0, bisect.bisect_right(self._starts, ready_ns) - 1)
            for i in range(idx, len(self._intervals)):
                gap_start = self._intervals[i - 1][1] if i > 0 else 0
                gap_end = self._intervals[i][0]
                start = max(gap_start, ready_ns)
                if start + duration_ns <= gap_end:
                    done = start + duration_ns
                    # The tail pointer is untouched: this grant consumes
                    # idle time strictly before the last booked interval.
                    self.busy_ns += duration_ns
                    self.grants += 1
                    self._insert_interval(start, done, i)
                    return Grant(start, done)
        return self.reserve(ready_ns, duration_ns)

    def _insert_interval(self, start: int, done: int, at: int) -> None:
        """Insert [start, done) before interval ``at``, coalescing edges."""
        merge_prev = at > 0 and self._intervals[at - 1][1] == start
        merge_next = self._intervals[at][0] == done
        if merge_prev and merge_next:
            self._intervals[at - 1] = (self._intervals[at - 1][0], self._intervals[at][1])
            del self._intervals[at]
            del self._starts[at]
        elif merge_prev:
            self._intervals[at - 1] = (self._intervals[at - 1][0], done)
        elif merge_next:
            self._intervals[at] = (start, self._intervals[at][1])
            self._starts[at] = start
        else:
            self._intervals.insert(at, (start, done))
            self._starts.insert(at, start)

    def occupy(self, start_ns: int, done_ns: int, busy_ns: Optional[int] = None) -> None:
        """Record an explicitly timed occupancy (start may precede free_at)."""
        self.free_at_ns = max(self.free_at_ns, done_ns)
        self.busy_ns += (done_ns - start_ns) if busy_ns is None else busy_ns
        self.grants += 1

    def busy_within(self, until_ns: int) -> int:
        """Exact busy overlap with ``[0, until_ns]``."""
        if until_ns <= 0:
            return 0
        # Intervals are sorted and disjoint; count whole ones before the
        # cut, then the clipped part of the one straddling it.
        idx = bisect.bisect_right(self._starts, until_ns)
        total = 0
        for start, done in self._intervals[:idx]:
            total += min(done, until_ns) - start
        return total

    def reset(self) -> None:
        self.free_at_ns = 0
        self._starts.clear()
        self._intervals.clear()


class FifoResource:
    """A single greedy FIFO timeline (channel bus, host link, crossbar port).

    With a ``telemetry`` bundle the resource publishes
    ``<name>.busy_ns``/``<name>.grants`` counters and emits one span per
    grant on the ``<name>`` trace track; under the default
    :class:`~repro.telemetry.tracer.NullTracer` both are no-ops.
    """

    def __init__(
        self,
        name: str,
        telemetry=None,
        trace_label: str = "busy",
        backfill: bool = False,
    ) -> None:
        self.name = name
        self._lane = _Timeline()
        self._trace_label = trace_label
        self._backfill = backfill
        if telemetry is None:
            from repro.telemetry.tracer import NULL_TRACER

            self._tracer = NULL_TRACER
            self._busy_counter = None
            self._grant_counter = None
        else:
            self._tracer = telemetry.tracer
            self._busy_counter = telemetry.counters.counter(f"{name}.busy_ns")
            self._grant_counter = telemetry.counters.counter(f"{name}.grants")

    @property
    def free_at_ns(self) -> int:
        return self._lane.free_at_ns

    @property
    def busy_ns(self) -> int:
        return self._lane.busy_ns

    @property
    def grants(self) -> int:
        return self._lane.grants

    def acquire(self, ready_ns, duration_ns, label: Optional[str] = None) -> Grant:
        """Grant the next FIFO slot of ``duration_ns`` starting >= ``ready_ns``."""
        if duration_ns < 0:
            raise ValueError(f"negative duration {duration_ns} on {self.name}")
        if self._backfill:
            grant = self._lane.reserve_backfill(as_ns(ready_ns), as_ns(duration_ns))
        else:
            grant = self._lane.reserve(as_ns(ready_ns), as_ns(duration_ns))
        if self._busy_counter is not None:
            self._busy_counter.inc(grant.done_ns - grant.start_ns)
            self._grant_counter.inc()
        self._tracer.complete(
            self.name, label or self._trace_label, grant.start_ns, grant.done_ns
        )
        return grant

    def occupy(self, start_ns, done_ns, busy_ns=None) -> None:
        """Record an explicitly timed occupancy (non-queuing components).

        Unlike :meth:`acquire`, the interval is taken as given: the
        timeline's free-at pointer only moves forward and overlapping
        occupancies are allowed (a non-blocking fabric port).
        """
        start = as_ns(start_ns)
        done = as_ns(done_ns)
        if done < start:
            raise ValueError(f"occupancy on {self.name} ends before it starts")
        self._lane.occupy(start, done, None if busy_ns is None else as_ns(busy_ns))
        if self._busy_counter is not None:
            self._busy_counter.inc(done - start if busy_ns is None else as_ns(busy_ns))
            self._grant_counter.inc()

    def busy_within(self, until_ns) -> int:
        return self._lane.busy_within(as_ns(until_ns))

    def utilisation(self, until_ns) -> float:
        """Exact fraction of ``[0, until_ns]`` this timeline was occupied."""
        window = as_ns(until_ns)
        return self._lane.busy_within(window) / window if window > 0 else 0.0

    def reset(self) -> None:
        """Rewind the timeline (manufacturing-state preloads)."""
        self._lane.reset()


class PooledResource:
    """N unit timelines with explicit-unit or least-loaded selection.

    Models pooled hardware where a request occupies one unit of many:
    flash planes within a die (explicit unit — the address picks the
    plane) or the stream-core pool (least-loaded — the firmware picks the
    first core to free up, ties to the lowest index).
    """

    def __init__(self, name: str, units: int, telemetry=None) -> None:
        if units <= 0:
            raise ValueError(f"pooled resource {name} needs at least one unit")
        self.name = name
        self._lanes = [_Timeline() for _ in range(units)]
        if telemetry is None:
            from repro.telemetry.tracer import NULL_TRACER

            self._tracer = NULL_TRACER
            self._busy_counter = None
        else:
            self._tracer = telemetry.tracer
            self._busy_counter = telemetry.counters.counter(f"{name}.busy_ns")

    @property
    def units(self) -> int:
        return len(self._lanes)

    def free_at(self, unit: int) -> int:
        return self._lanes[unit].free_at_ns

    def busy_ns(self, unit: int) -> int:
        return self._lanes[unit].busy_ns

    def least_loaded(self) -> int:
        """The unit that frees first; ties break to the lowest index."""
        return min(range(len(self._lanes)), key=lambda i: self._lanes[i].free_at_ns)

    def acquire(
        self,
        ready_ns,
        duration_ns,
        unit: Optional[int] = None,
        label: Optional[str] = None,
    ) -> Grant:
        """Reserve ``duration_ns`` on ``unit`` (or the least-loaded unit)."""
        if duration_ns < 0:
            raise ValueError(f"negative duration {duration_ns} on {self.name}")
        index = self.least_loaded() if unit is None else unit
        grant = self._lanes[index].reserve(as_ns(ready_ns), as_ns(duration_ns))
        if self._busy_counter is not None:
            self._busy_counter.inc(grant.done_ns - grant.start_ns)
        if label is not None:
            self._tracer.complete(
                f"{self.name}/{index}", label, grant.start_ns, grant.done_ns
            )
        return Grant(grant.start_ns, grant.done_ns, index)

    def occupy(self, unit: int, start_ns, done_ns, busy_ns=None) -> None:
        """Record an explicitly timed occupancy on ``unit``.

        Used where the occupancy end is data-dependent (a stream core held
        until its last input page lands) rather than a fixed duration from
        the grant's start; ``busy_ns`` optionally narrows the utilisation
        accounting to the genuinely productive span.
        """
        start = as_ns(start_ns)
        done = as_ns(done_ns)
        if done < start:
            raise ValueError(f"occupancy on {self.name}/{unit} ends before it starts")
        self._lanes[unit].occupy(
            start, done, None if busy_ns is None else as_ns(busy_ns)
        )
        if self._busy_counter is not None:
            self._busy_counter.inc(done - start if busy_ns is None else as_ns(busy_ns))

    def utilisations(self, until_ns) -> List[float]:
        window = as_ns(until_ns)
        if window <= 0:
            return [0.0] * len(self._lanes)
        return [lane.busy_ns / window for lane in self._lanes]

    def reset(self) -> None:
        for lane in self._lanes:
            lane.reset()

    @property
    def horizon_ns(self) -> int:
        """Latest free-at instant across all units."""
        return max(lane.free_at_ns for lane in self._lanes)
