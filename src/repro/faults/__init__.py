"""Fault-injection campaigns and RAID-backed recovery (``repro.faults``).

Computational storage is only useful if it keeps serving when the media
misbehaves, so this package stresses the flash → firmware → serve stack
end to end: a seeded :class:`FaultInjector` corrupts pages as they are
read (sparse correctable noise, dense uncorrectable bursts, slow dies,
whole channel/chip/plane failures), the firmware's
:class:`~repro.ssd.firmware.RecoveryController` climbs the read-retry →
RAID-reconstruction → remap ladder, and a :class:`FaultCampaign` wraps a
multi-tenant serve run with golden-copy verification so every recovery is
checked bit-for-bit.

Everything is a pure function of the campaign seed: same seed, same
corrupted bits, same recovery report fingerprint.
"""

from __future__ import annotations

from repro.config import FaultConfig, HardFault
from repro.faults.campaign import (
    CampaignReport,
    FaultCampaign,
    clean_baseline,
    default_fault_tenants,
    golden_page,
    run_campaign,
)
from repro.faults.injector import FaultInjector, ReadFault
from repro.faults.raidmap import PARITY_LPA_BASE, RaidGroupMap

__all__ = [
    "FaultConfig",
    "HardFault",
    "FaultInjector",
    "ReadFault",
    "RaidGroupMap",
    "PARITY_LPA_BASE",
    "FaultCampaign",
    "CampaignReport",
    "run_campaign",
    "clean_baseline",
    "default_fault_tenants",
    "golden_page",
]
