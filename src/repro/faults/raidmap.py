"""RAID-4 recovery groups over the logical address space.

The campaign groups consecutive data LPAs into stripes of ``raid_k`` pages
and stores one XOR parity page per group in a dedicated LPA namespace
(``PARITY_LPA_BASE``, disjoint from tenant regions, firmware offload
results at ``1 << 40``, and serve-path writes at ``1 << 41``). Any single
lost page of a group — data or the parity itself — is the XOR of the
surviving members, which is exactly the parity math of
:class:`repro.kernels.raid.Raid4Kernel`.

A trailing remainder group may hold fewer than ``raid_k`` data pages; a
single-page group degenerates to replication (its parity *is* the page).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultError

#: Parity pages live above every other LPA namespace the device hands out.
PARITY_LPA_BASE = 1 << 39


class RaidGroupMap:
    """Immutable LPA → stripe-group map with mate resolution."""

    def __init__(self, groups: Sequence[Tuple[Tuple[int, ...], int]]) -> None:
        self._groups: List[Tuple[Tuple[int, ...], int]] = list(groups)
        self._group_of: Dict[int, int] = {}
        for index, (members, parity) in enumerate(self._groups):
            for lpa in members:
                if lpa in self._group_of:
                    raise FaultError(f"LPA {lpa} belongs to two RAID groups")
                self._group_of[lpa] = index
            self._group_of[parity] = index

    @classmethod
    def build(cls, data_lpas: Sequence[int], raid_k: int) -> "RaidGroupMap":
        """Chunk ``data_lpas`` (in order) into groups of ``raid_k``."""
        if not 2 <= raid_k <= 6:
            raise FaultError("raid_k must be within 2..6")
        lpas = list(data_lpas)
        groups = []
        for start in range(0, len(lpas), raid_k):
            members = tuple(lpas[start : start + raid_k])
            groups.append((members, PARITY_LPA_BASE + len(groups)))
        return cls(groups)

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def parity_lpas(self) -> List[int]:
        return [parity for _, parity in self._groups]

    def members(self, group: int) -> Tuple[int, ...]:
        return self._groups[group][0]

    def parity(self, group: int) -> int:
        return self._groups[group][1]

    def group_for(self, lpa: int) -> Optional[int]:
        return self._group_of.get(lpa)

    def stripe_mates(self, lpa: int) -> Optional[List[int]]:
        """The pages whose XOR reconstructs ``lpa`` (None if ungrouped).

        For a data page: its surviving group-mates plus the parity page.
        For a parity page: the group's data members. A single-page group
        returns just the replica.
        """
        index = self._group_of.get(lpa)
        if index is None:
            return None
        members, parity = self._groups[index]
        if lpa == parity:
            return list(members)
        return [m for m in members if m != lpa] + [parity]
