"""Deterministic, seeded fault injection for the flash substrate.

The :class:`FaultInjector` sits on the device's read path (called by
:class:`repro.ssd.firmware.RecoveryController` once per read *attempt*)
and decides — purely as a function of ``(campaign seed, physical page,
per-page read count)`` — whether that attempt observes:

* **sparse noise** — ``noisy_bits`` single-bit flips spread over distinct
  ECC codewords, always correctable by the chip's SECDED decode; the
  pristine bytes travel back on the :class:`ReadFault` so the firmware can
  scrub the cells after correction,
* **an uncorrectable burst** — exactly two flips inside one 64-bit
  codeword, which SECDED *detects* but cannot correct (two flips keep the
  overall parity even while the syndrome is nonzero; three flips would be
  silently miscorrected, so bursts are always injected as pairs),
* **a latency outlier** — a "slow die" sense adding ``slow_read_extra_ns``,
* **a hard fault** — the page sits inside a failed channel/chip/plane
  whose :class:`repro.config.HardFault` onset has passed.

Bursts are **transient** with probability ``transient_fraction`` (the
shifted sense threshold recovers on the next read attempt, modelling
read-retry recalibration: the injector restores the pristine bytes and the
retry succeeds) and **permanent** otherwise (the corruption persists until
the firmware rebuilds the page from its RAID group and remaps it, at which
point :meth:`FaultInjector.forget` clears the dead physical page).

Every random draw comes from ``random.Random`` seeded by arithmetic
mixing — never the process-randomised ``hash()`` — so two runs with the
same seed and call sequence corrupt identical bits in identical order.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import FaultConfig, FlashConfig, HardFault
from repro.errors import FaultError
from repro.flash.array import PhysicalPageAddress
from repro.flash.chip import FlashChip


@dataclass
class ReadFault:
    """What the injector did to one read attempt.

    ``kind`` is ``None`` (clean), ``'noise'`` (correctable flips),
    ``'transient'``/``'permanent'`` (uncorrectable burst), or ``'hard'``
    (the page is inside a dead unit — no data comes back at all).
    ``touched`` tells the firmware whether the page's raw bytes may differ
    from what was programmed, i.e. whether the full ECC decode is needed;
    ``scrub`` carries the pristine bytes to restore after a successful
    correction.
    """

    kind: Optional[str] = None
    slow_extra_ns: float = 0.0
    touched: bool = False
    scrub: Optional[bytes] = None


@dataclass
class _ActiveFault:
    """An injected burst whose corruption is still in the cells."""

    kind: str  # 'transient' | 'permanent'
    pristine: bytes


class FaultInjector:
    """Seeded per-read fault source over one flash array geometry."""

    def __init__(self, config: FaultConfig, flash: FlashConfig, registry=None) -> None:
        self.cfg = config
        self.flash = flash
        #: With a :class:`~repro.telemetry.counters.CounterRegistry` the
        #: injection tallies publish as ``faults.*`` in the device snapshot;
        #: standalone injectors keep a private Counter (same interface).
        if registry is None:
            self.counters = Counter()
        else:
            self.counters = registry.group("faults")
        self._reads: Dict[int, int] = {}  # flat ppa -> read attempts seen
        self._active: Dict[int, _ActiveFault] = {}

    # -- deterministic RNG ----------------------------------------------------

    def _rng(self, flat: int, attempt: int) -> random.Random:
        # Same mixing idiom as FlashChip.inject_errors: distinct primes
        # decorrelate the three inputs without relying on hash().
        return random.Random(
            (self.cfg.seed * 1_000_003 + flat) * 7_919 + attempt * 104_729
        )

    # -- hard-fault zones -----------------------------------------------------

    @staticmethod
    def _in_zone(fault: HardFault, ppa: PhysicalPageAddress) -> bool:
        if fault.channel != ppa.channel:
            return False
        if fault.kind == "channel":
            return True
        if fault.chip != ppa.chip:
            return False
        if fault.kind == "chip":
            return True
        return fault.die == ppa.die and fault.plane == ppa.plane

    def hard_failed(self, ppa: PhysicalPageAddress, now_ns: float) -> bool:
        """Is ``ppa`` inside a hard-fault zone whose onset has passed?"""
        return any(
            f.onset_ns <= now_ns and self._in_zone(f, ppa)
            for f in self.cfg.failures
        )

    # -- the read-path hook ---------------------------------------------------

    def on_read(self, chip: FlashChip, ppa: PhysicalPageAddress, now_ns: float) -> ReadFault:
        """Apply this attempt's sampled fault to the cells; report what hit."""
        if self.hard_failed(ppa, now_ns):
            return ReadFault(kind="hard")
        flat = ppa.flat_index(self.flash)
        attempt = self._reads.get(flat, 0)
        self._reads[flat] = attempt + 1
        rng = self._rng(flat, attempt)
        draw = rng.random()  # fault-class draw, always consumed first
        slow = (
            self.cfg.slow_read_extra_ns
            if self.cfg.slow_read_rate and rng.random() < self.cfg.slow_read_rate
            else 0.0
        )
        if slow:
            self.counters["injected_slow_reads"] += 1

        active = self._active.get(flat)
        if active is not None:
            if active.kind == "transient":
                # Read-retry recalibration: the shifted sense threshold
                # recovers, so this attempt sees the pristine bytes again.
                chip.overwrite_raw(ppa.die, ppa.plane, ppa.block, ppa.page, active.pristine)
                del self._active[flat]
                self.counters["transient_heals"] += 1
                return ReadFault(kind=None, slow_extra_ns=slow, touched=False)
            return ReadFault(kind="permanent", slow_extra_ns=slow, touched=True)

        pristine = chip.read_data(ppa.die, ppa.plane, ppa.block, ppa.page)
        if pristine is None:
            # Mapped-but-never-programmed page (metadata-only workloads):
            # there are no cells to corrupt.
            return ReadFault(kind=None, slow_extra_ns=slow, touched=False)

        if draw < self.cfg.uncorrectable_rate:
            kind = (
                "transient"
                if rng.random() < self.cfg.transient_fraction
                else "permanent"
            )
            chip.overwrite_raw(
                ppa.die, ppa.plane, ppa.block, ppa.page, self._burst(pristine, rng)
            )
            self._active[flat] = _ActiveFault(kind, pristine)
            self.counters[f"injected_{kind}_bursts"] += 1
            return ReadFault(kind=kind, slow_extra_ns=slow, touched=True)

        if draw < self.cfg.uncorrectable_rate + self.cfg.page_error_rate:
            chip.overwrite_raw(
                ppa.die, ppa.plane, ppa.block, ppa.page, self._noise(pristine, rng)
            )
            self.counters["injected_noise_pages"] += 1
            return ReadFault(kind="noise", slow_extra_ns=slow, touched=True, scrub=pristine)

        return ReadFault(kind=None, slow_extra_ns=slow, touched=False)

    def forget(self, ppa: PhysicalPageAddress) -> None:
        """Drop injector state for a physical page leaving service (remap)."""
        flat = ppa.flat_index(self.flash)
        self._active.pop(flat, None)
        self._reads.pop(flat, None)

    # -- corruption shapes ----------------------------------------------------

    @staticmethod
    def _burst(data: bytes, rng: random.Random) -> bytes:
        """Two flips inside one codeword: detected-uncorrectable by SECDED."""
        if len(data) < 1:
            raise FaultError("cannot inject a burst into an empty page")
        out = bytearray(data)
        words = len(data) // 8
        if words:
            word = rng.randrange(words)
            base, span = word * 64, 64
        else:
            base, span = 0, len(data) * 8
        if span < 2:
            raise FaultError("page too small for a two-bit burst")
        a, b = rng.sample(range(span), 2)
        for bit in (base + a, base + b):
            out[bit // 8] ^= 1 << (bit % 8)
        return bytes(out)

    def _noise(self, data: bytes, rng: random.Random) -> bytes:
        """Single-bit flips in distinct codewords: always correctable."""
        out = bytearray(data)
        words = max(1, len(data) // 8)
        nbits = min(self.cfg.noisy_bits, words)
        for word in rng.sample(range(words), nbits):
            span = min(64, len(data) * 8 - word * 64)
            bit = word * 64 + rng.randrange(span)
            out[bit // 8] ^= 1 << (bit % 8)
        return bytes(out)
