"""Seeded fault campaigns: golden data, RAID parity, serve, verify.

A :class:`FaultCampaign` turns the pieces of ``repro.faults`` into one
reproducible experiment:

1. **Preload** — build a fresh device, let the serving layer carve the
   tenant LPA regions, then program every data page with a deterministic
   per-LPA pattern (the *golden* copy kept host-side for verification) and
   one RAID-4 parity page per ``raid_k``-page group. The preload programs
   the chips directly and then rewinds the plane timelines, so the device
   starts the run in "manufactured" state instead of spending the first
   millisecond of simulated time writing the dataset.
2. **Serve** — run the multi-tenant workload with a
   :class:`~repro.ssd.firmware.RecoveryController` on the read path; the
   :class:`~repro.faults.injector.FaultInjector` corrupts pages as they
   are read and the firmware climbs the retry → RAID-rebuild ladder.
3. **Verify** — sweep every golden page back through the recovery path
   and compare against the golden bytes: a campaign is only healthy if
   *zero* pages were served or left corrupt.

Same seed → identical injected faults, identical recovery actions,
identical :meth:`CampaignReport.fingerprint`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import FaultConfig, ServeConfig, SSDConfig
from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.raidmap import RaidGroupMap
from repro.serve.metrics import ServeReport
from repro.serve.workload import TenantSpec


def default_fault_tenants() -> List[TenantSpec]:
    """A small read + scomp mix with regions sized for fast preload."""
    return [
        TenantSpec(
            name="reader", weight=2.0, kind="read",
            pages_per_command=4, interarrival_ns=20_000.0, region_pages=256,
        ),
        TenantSpec(
            name="scanner", weight=1.0, kind="scomp", kernel="scan",
            pages_per_command=8, interarrival_ns=40_000.0, region_pages=256,
        ),
    ]


def golden_page(seed: int, lpa: int, nbytes: int) -> bytes:
    """The deterministic pattern programmed into (and expected from) ``lpa``."""
    return random.Random((seed + 1) * 2_654_435_761 + lpa).randbytes(nbytes)


@dataclass
class CampaignReport:
    """Everything one campaign run produced."""

    serve: ServeReport
    faults: FaultConfig
    data_pages: int
    parity_pages: int
    #: Golden-copy mismatches observed while *serving* (must stay 0).
    corruption_events: int
    #: Post-run sweep: pages checked and pages that could not be
    #: materialised bit-exactly even through RAID reconstruction.
    integrity_checked: int
    integrity_errors: int
    recovery_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        return self.corruption_events == 0 and self.integrity_errors == 0

    def fingerprint(self):
        """Deterministic digest: same seed, same campaign, same tuple."""
        return (
            self.serve.fingerprint(),
            self.data_pages,
            self.parity_pages,
            self.corruption_events,
            self.integrity_checked,
            self.integrity_errors,
            tuple(sorted(self.recovery_counters.items())),
        )

    def render(self) -> str:
        f = self.faults
        lines = [
            f"fault campaign: seed={f.seed} page_error_rate={f.page_error_rate} "
            f"uncorrectable_rate={f.uncorrectable_rate} raid_k={f.raid_k}",
            f"golden data   : {self.data_pages} pages + {self.parity_pages} parity",
            f"integrity     : {self.integrity_checked} pages swept, "
            f"{self.integrity_errors} unrecoverable, "
            f"{self.corruption_events} served-corrupt "
            f"({'HEALTHY' if self.healthy else 'DATA LOSS'})",
            "",
            self.serve.render(),
        ]
        return "\n".join(lines)


class FaultCampaign:
    """One seeded fault-injection run against one device configuration."""

    def __init__(
        self,
        config: SSDConfig,
        fault_config: FaultConfig,
        tenants: Optional[Sequence[TenantSpec]] = None,
        serve_config: Optional[ServeConfig] = None,
        duration_ns: float = 500_000.0,
        seed: int = 0,
        verify_integrity: bool = True,
        telemetry=None,
    ) -> None:
        if duration_ns <= 0:
            raise FaultError("campaign duration must be positive")
        self.config = config
        self.fault_config = fault_config
        self.tenants = list(tenants) if tenants is not None else default_fault_tenants()
        self.serve_config = serve_config
        self.duration_ns = duration_ns
        self.seed = seed
        self.verify_integrity = verify_integrity
        #: Optional :class:`~repro.telemetry.Telemetry` bundle for the
        #: device under test (tracing + the shared counter registry).
        self.telemetry = telemetry
        # Populated by run(), kept for white-box inspection in tests.
        self.device = None
        self.layer = None
        self.injector: Optional[FaultInjector] = None
        self.recovery = None
        self.raid_map: Optional[RaidGroupMap] = None
        self.golden: Dict[int, bytes] = {}

    # -- preload ---------------------------------------------------------------

    def _preload(self) -> None:
        """Program golden data + parity at the mapped pages, at time zero."""
        device = self.device
        page_bytes = device.config.flash.page_bytes
        data_lpas: List[int] = []
        for gen in self.layer.generators:
            data_lpas.extend(
                range(gen.lpa_base, gen.lpa_base + gen.spec.region_pages)
            )
        self.raid_map = RaidGroupMap.build(data_lpas, self.fault_config.raid_k)

        golden: Dict[int, bytes] = {}
        for lpa in data_lpas:
            golden[lpa] = golden_page(self.fault_config.seed, lpa, page_bytes)
            self._program(device.ftl.lookup(lpa), golden[lpa])
        for group in range(len(self.raid_map)):
            members = [golden[m] for m in self.raid_map.members(group)]
            parity = self._parity(members)
            parity_lpa = self.raid_map.parity(group)
            golden[parity_lpa] = parity
            self._program(device.ftl.write(parity_lpa), parity)
        self.golden = golden

        # Manufacturing-state preload: the programs above must not occupy
        # the plane or bus timelines the serve run is about to contend on.
        device.array.reset_timelines()

    def _program(self, ppa, data: bytes) -> None:
        chip = self.device.array.chips[ppa.channel][ppa.chip]
        chip.start_program(ppa.die, ppa.plane, ppa.block, ppa.page, 0.0, data=data)

    @staticmethod
    def _parity(members: List[bytes]) -> bytes:
        if len(members) == 1:
            return members[0]  # remainder group of one: replicate
        from repro.kernels.raid import Raid4Kernel

        return Raid4Kernel(k=len(members)).reference(members)[0]

    # -- run -------------------------------------------------------------------

    def run(self) -> CampaignReport:
        from repro.serve.scheduler import ServingLayer
        from repro.ssd.device import ComputationalSSD
        from repro.ssd.firmware import RecoveryController

        self.device = ComputationalSSD(self.config, telemetry=self.telemetry)
        # The layer's constructor carves and maps the tenant regions; the
        # recovery controller needs the resulting golden set, so it is
        # attached after preload.
        self.layer = ServingLayer(
            self.device, self.tenants, config=self.serve_config, seed=self.seed
        )
        self._preload()
        self.injector = FaultInjector(
            self.fault_config,
            self.device.config.flash,
            registry=self.device.telemetry.counters,
        )
        self.recovery = RecoveryController(
            self.device,
            self.fault_config,
            injector=self.injector,
            raid_map=self.raid_map,
            golden=self.golden,
        )
        self.layer.recovery = self.recovery
        serve_report = self.layer.run(self.duration_ns)

        checked = errors = 0
        if self.verify_integrity:
            checked, errors = self._sweep(serve_report.horizon_ns)
        return CampaignReport(
            serve=serve_report,
            faults=self.fault_config,
            data_pages=len(self.golden) - len(self.raid_map),
            parity_pages=len(self.raid_map),
            corruption_events=self.recovery.corruption_events,
            integrity_checked=checked,
            integrity_errors=errors,
            recovery_counters=dict(serve_report.faults),
        )

    def _sweep(self, at_ns: float):
        """Read every golden page back through the recovery ladder."""
        checked = errors = 0
        for lpa in sorted(self.golden):
            outcome = self.recovery.read_lpa(lpa, at_ns)
            checked += 1
            if outcome.data != self.golden[lpa]:
                errors += 1
        return checked, errors


def run_campaign(
    config: SSDConfig,
    fault_config: FaultConfig,
    tenants: Optional[Sequence[TenantSpec]] = None,
    serve_config: Optional[ServeConfig] = None,
    duration_ns: float = 500_000.0,
    seed: int = 0,
    verify_integrity: bool = True,
    telemetry=None,
) -> CampaignReport:
    """One-call entry point: build, run, and report a fault campaign."""
    return FaultCampaign(
        config,
        fault_config,
        tenants=tenants,
        serve_config=serve_config,
        duration_ns=duration_ns,
        seed=seed,
        verify_integrity=verify_integrity,
        telemetry=telemetry,
    ).run()


def clean_baseline(
    config: SSDConfig,
    tenants: Optional[Sequence[TenantSpec]] = None,
    serve_config: Optional[ServeConfig] = None,
    duration_ns: float = 500_000.0,
    seed: int = 0,
) -> ServeReport:
    """The same serve run with no faults injected (comparison baseline)."""
    from repro.serve import simulate_serve

    return simulate_serve(
        config,
        list(tenants) if tenants is not None else default_fault_tenants(),
        serve_config,
        duration_ns=duration_ns,
        seed=seed,
    )
