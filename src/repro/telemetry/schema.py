"""Structural validation of exported Chrome ``trace_event`` JSON.

Shared by the test suite and the CI trace-smoke job: a trace is only
useful if Perfetto can load it, so we check the invariants the exporter
promises — required keys on every event, nondecreasing timestamps, and
balanced, correctly named B/E span pairs per track.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
_KNOWN_PHASES = ("B", "E", "i", "M", "X")


def validate_chrome_trace(trace: dict) -> List[str]:
    """Return a list of human-readable problems (empty = valid)."""
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' list is missing"]

    last_ts = None
    open_spans: Dict[Tuple[int, int], List[str]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in event]
        if missing:
            problems.append(f"event {index} ({event.get('name')!r}) missing keys {missing}")
            continue
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            problems.append(f"event {index} has unknown phase {phase!r}")
            continue
        if phase == "M":
            continue  # metadata carries no timeline semantics
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index} has non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {index} ({event['name']!r}) ts {ts} precedes previous ts {last_ts}"
            )
        last_ts = ts
        key = (event["pid"], event["tid"])
        if phase == "B":
            open_spans.setdefault(key, []).append(event["name"])
        elif phase == "E":
            stack = open_spans.get(key)
            if not stack:
                problems.append(
                    f"event {index}: E for {event['name']!r} on track {key} with no open B"
                )
            else:
                opened = stack.pop()
                if opened != event["name"]:
                    problems.append(
                        f"event {index}: E named {event['name']!r} closes B named {opened!r}"
                    )
    for key, stack in open_spans.items():
        if stack:
            problems.append(f"track {key} left spans open: {stack}")
    return problems


def span_tracks(trace: dict) -> List[str]:
    """Names of tracks that contain at least one complete span."""
    events = trace.get("traceEvents", [])
    names_by_tid: Dict[Tuple[int, int], str] = {}
    span_tids = set()
    for event in events:
        key = (event.get("pid"), event.get("tid"))
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names_by_tid[key] = event.get("args", {}).get("name", "")
        elif event.get("ph") in ("B", "X"):
            span_tids.add(key)
    return sorted(names_by_tid.get(key, f"tid{key}") for key in span_tids)
