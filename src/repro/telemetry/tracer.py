"""Event tracing against simulated time, exported as Chrome ``trace_event`` JSON.

A :class:`Tracer` records three event shapes on named *tracks* (one track
per simulated component: a tenant queue, the scheduler, a flash channel, a
stream core, the host link):

* ``complete(track, name, start_ns, end_ns)`` — a span whose start and end
  are both known at record time (the common case for greedy timelines);
* ``begin``/``end`` — a span opened and closed separately;
* ``instant`` — a point event (a kernel event dispatch, a retry).

Timestamps are **simulated nanoseconds**, never wall clock, so traces are
deterministic: the export sorts stably, serialises with fixed separators,
and two same-seed runs produce byte-identical files. Since the
:class:`repro.sim.Simulator` migration the kernel and its resources stamp
integer nanoseconds, which also keeps the exported ``ts`` values exact
(no float formatting jitter across platforms); spans recorded from
analytic float timelines remain accepted.

:class:`NullTracer` is the disabled implementation every component holds by
default: every method is a no-op that allocates nothing, so instrumented
hot paths cost one dynamic dispatch when tracing is off.

Export targets the Chrome/Perfetto ``trace_event`` format (JSON object with
a ``traceEvents`` list); ``ts`` is in microseconds per the spec, so one
simulated nanosecond is ``ts = ns / 1000``. Load the file at
https://ui.perfetto.dev or chrome://tracing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


class TraceError(ReproError):
    """Malformed trace usage (unbalanced spans, unknown track)."""


class NullTracer:
    """Tracing disabled: every record call is an allocation-free no-op."""

    enabled = False

    def begin(self, track: str, name: str, ts_ns: float) -> None:
        pass

    def end(self, track: str, ts_ns: float) -> None:
        pass

    def complete(self, track: str, name: str, start_ns: float, end_ns: float) -> None:
        pass

    def instant(self, track: str, name: str, ts_ns: float) -> None:
        pass

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ns"}

    def to_json(self) -> str:
        return _dump(self.to_chrome_trace())

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())


#: Shared disabled tracer. Stateless, so one instance serves every component.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records spans and instants against simulated nanoseconds."""

    enabled = True

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        # (ts_ns, seq, phase, track, name)
        self._events: List[Tuple[float, int, str, str, str]] = []
        self._tracks: Dict[str, int] = {}
        self._open: Dict[str, List[str]] = {}
        self._seq = 0

    # -- recording -----------------------------------------------------------

    def _track_id(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[track] = tid
        return tid

    def _record(self, ts_ns: float, phase: str, track: str, name: str) -> None:
        self._track_id(track)
        self._events.append((ts_ns, self._seq, phase, track, name))
        self._seq += 1

    def begin(self, track: str, name: str, ts_ns: float) -> None:
        self._open.setdefault(track, []).append(name)
        self._record(ts_ns, "B", track, name)

    def end(self, track: str, ts_ns: float) -> None:
        stack = self._open.get(track)
        if not stack:
            raise TraceError(f"end() on track {track!r} with no open span")
        name = stack.pop()
        self._record(ts_ns, "E", track, name)

    def complete(self, track: str, name: str, start_ns: float, end_ns: float) -> None:
        """A span with both endpoints known; emitted as a balanced B/E pair."""
        if end_ns < start_ns:
            raise TraceError(
                f"span {name!r} on {track!r} ends ({end_ns}) before it starts ({start_ns})"
            )
        self._record(start_ns, "B", track, name)
        self._record(end_ns, "E", track, name)

    def instant(self, track: str, name: str, ts_ns: float) -> None:
        self._record(ts_ns, "i", track, name)

    # -- introspection -------------------------------------------------------

    @property
    def num_events(self) -> int:
        return len(self._events)

    def track_names(self) -> List[str]:
        return list(self._tracks)

    def events_on(self, track: str) -> List[Tuple[float, str, str]]:
        """(ts_ns, phase, name) for one track, in export order."""
        return [
            (ts, ph, name)
            for ts, _, ph, tr, name in sorted(self._events)
            if tr == track
        ]

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` JSON object (ts sorted, µs units)."""
        if any(self._open.values()):
            dangling = [t for t, stack in self._open.items() if stack]
            raise TraceError(f"unclosed spans on tracks: {dangling}")
        events: List[dict] = []
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": 1,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        )
        for track, tid in self._tracks.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        for ts_ns, _, phase, track, name in sorted(self._events):
            event = {
                "name": name,
                "ph": phase,
                "ts": ts_ns / 1000.0,
                "pid": 1,
                "tid": self._tracks[track],
            }
            if phase == "i":
                event["s"] = "t"  # thread-scoped instant
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def to_json(self) -> str:
        return _dump(self.to_chrome_trace())

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())


def _dump(trace: dict) -> str:
    """Deterministic serialisation: fixed key order and separators."""
    return json.dumps(trace, sort_keys=True, separators=(",", ":"))


def make_tracer(enabled: bool, process_name: str = "repro") -> NullTracer:
    """The standard way to pick an implementation from a flag."""
    return Tracer(process_name) if enabled else NULL_TRACER
