"""Metric primitives and the device-wide registry.

Three metric kinds cover everything the simulators tally:

* :class:`Counter` — a monotonically growing total (pages served, bytes
  moved, retries). Fractional increments are allowed so time totals
  (busy nanoseconds) fit the same primitive.
* :class:`Gauge` — a point-in-time level (inflight commands, queue depth
  high-water mark via :meth:`Gauge.set_max`).
* :class:`Histogram` — raw-sample distribution with nearest-rank
  percentiles through the shared :func:`repro.utils.stats.percentile`,
  the same convention every latency SLO in the repo already uses.

A :class:`CounterRegistry` is the per-device namespace: components create
their metrics through it (``registry.counter("flash.ch0.bytes")``) instead
of keeping private tally dicts, so one snapshot shows the whole stack.
:class:`CounterGroup` adapts dict-style tallying code (``group["x"] += 1``)
onto registry counters without changing its call sites.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Dict, Iterator, List, Optional, Union

from repro.utils.stats import percentile

MetricValue = Union[int, float]


class Counter:
    """A named, monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A named instantaneous level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """High-water-mark update."""
        if value > self.value:
            self.value = value


class Histogram:
    """Raw-sample distribution with nearest-rank percentiles.

    Samples are kept verbatim (the serve runs observe at most a few
    thousand latencies), so p50/p95/p99 are bit-identical to what the
    previous per-module tallies computed from their private lists.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def extend(self, values) -> None:
        self.values.extend(values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else math.inf

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else -math.inf

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; 0.0 on an empty histogram."""
        return percentile(self.values, pct) if self.values else 0.0


class CounterGroup:
    """Dict-style facade over registry counters under one prefix.

    Lets tallying code keep its ``group["read_retries"] += 1`` shape while
    the values live in the shared registry. Iteration yields only names
    that were actually touched, in sorted order, so snapshots stay stable.
    """

    __slots__ = ("_registry", "_prefix", "_names")

    def __init__(self, registry: "CounterRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix
        self._names: List[str] = []

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def __getitem__(self, name: str) -> float:
        counter = self._registry.counter(self._qualify(name))
        value = counter.value
        return int(value) if value == int(value) else value

    def __setitem__(self, name: str, value: float) -> None:
        counter = self._registry.counter(self._qualify(name))
        if value < counter.value:
            raise ValueError(f"counter {counter.name!r} cannot decrease")
        if name not in self._names:
            self._names.append(name)
        counter.value = float(value)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._names))

    def keys(self):
        return sorted(self._names)

    def items(self):
        return [(name, self[name]) for name in sorted(self._names)]

    def as_dict(self) -> Dict[str, float]:
        return dict(self.items())

    def __len__(self) -> int:
        return len(self._names)


# Dict-shaped consumers (``dict(group)``, ``collections.Counter(group)``)
# must see the key/value pairs, not the keys counted as elements.
Mapping.register(CounterGroup)


class CounterRegistry:
    """Per-device namespace of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the metric's kind, and re-requesting the same name with a
    different kind is an error (it always indicates two components
    colliding on a name).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def group(self, prefix: str) -> CounterGroup:
        """A dict-style counter facade under ``prefix``."""
        return CounterGroup(self, prefix)

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, MetricValue]:
        """Flat name → value map (histograms contribute summary stats)."""
        out: Dict[str, MetricValue] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = metric.count
                out[f"{name}.sum"] = metric.total
                if metric.count:
                    out[f"{name}.p50"] = metric.percentile(50.0)
                    out[f"{name}.p99"] = metric.percentile(99.0)
            else:
                out[name] = metric.value
        return out

    def render(self) -> str:
        """Human-readable dump of every registered metric."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, float) and value != int(value):
                lines.append(f"{name:<44s} {value:.3f}")
            else:
                lines.append(f"{name:<44s} {int(value)}")
        return "\n".join(lines)
