"""ISA-level cycle-attribution profiler for the stream cores.

Hooks the core-phase execution loop: for every interpreter step the
pipeline model charges a cost, and the profiler attributes that cost to the
step's PC under three buckets —

* **compute** — the base issue cycle plus multiplier/divider occupancy and
  branch/jump redirect bubbles (cycles the scalar pipeline itself spends),
* **mem_stall** — extra cycles a load/store waited on the memory hierarchy
  (L1/L2/scratchpad/DRAM),
* **stream_stall** — extra cycles a stream instruction waited on the
  stream-buffer head FIFO.

The attribution mirrors :meth:`repro.core.pipeline.PipelineModel.cost`
term for term, so the profile's total equals the run's cycle count
*exactly* — the per-instruction proof (Stream Semantic Registers style)
that the stream ISA removes loop overhead rather than hiding it.

Per-PC stats roll up into basic blocks (leader = program entry, branch
target, or instruction after a branch/jump), and :meth:`KernelProfile.report`
renders the classic hot-spot table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import BRANCH_OPS, InstrKind, JUMP_OPS
from repro.isa.interpreter import StepInfo
from repro.isa.program import Program

_MEM_KINDS = (InstrKind.LOAD, InstrKind.STORE)
_STREAM_KINDS = (InstrKind.STREAM_LOAD, InstrKind.STREAM_STORE)


@dataclass
class PcStats:
    """Everything attributed to one program counter."""

    pc: int
    op: str
    text: str
    count: int = 0
    cycles: float = 0.0
    compute: float = 0.0
    mem_stall: float = 0.0
    stream_stall: float = 0.0

    def add(self, cycles: float, compute: float, mem: float, stream: float) -> None:
        self.count += 1
        self.cycles += cycles
        self.compute += compute
        self.mem_stall += mem
        self.stream_stall += stream


@dataclass
class BlockStats:
    """One basic block's aggregate (PCs ``[start, end]`` inclusive)."""

    block_id: int
    start: int
    end: int
    count: int = 0  # executions of the leader
    cycles: float = 0.0
    compute: float = 0.0
    mem_stall: float = 0.0
    stream_stall: float = 0.0


class IsaProfiler:
    """Accumulates per-PC cycle attribution from interpreter steps.

    Attach one to a :class:`~repro.core.core.CoreModel` (``engine.profiler
    = IsaProfiler()``) and run a kernel; the core model forwards every
    ``(StepInfo, cost)`` pair. One profiler can absorb several runs (the
    chunked memory path resets the interpreter between chunks but the
    profile keeps accumulating).
    """

    def __init__(self) -> None:
        self.by_pc: Dict[int, PcStats] = {}
        self.program: Optional[Program] = None
        self.total_cycles: float = 0.0
        self.total_instructions: int = 0

    def set_program(self, program: Program) -> None:
        """Remember the program being profiled (for disassembly + blocks)."""
        self.program = program

    def record(self, info: StepInfo, cycles: float) -> None:
        """Attribute one executed step's cycles to its PC."""
        kind = info.kind
        extra = cycles - 1.0
        if kind in _MEM_KINDS:
            compute, mem, stream = 1.0, extra, 0.0
        elif kind in _STREAM_KINDS:
            compute, mem, stream = 1.0, 0.0, extra
        else:
            # Base cycle plus muldiv occupancy / redirect bubbles.
            compute, mem, stream = cycles, 0.0, 0.0
        stats = self.by_pc.get(info.pc)
        if stats is None:
            stats = PcStats(pc=info.pc, op=info.instr.op, text=str(info.instr))
            self.by_pc[info.pc] = stats
        stats.add(cycles, compute, mem, stream)
        self.total_cycles += cycles
        self.total_instructions += 1

    # -- aggregation ---------------------------------------------------------

    def pc_stats(self) -> List[PcStats]:
        """Per-PC stats in program order."""
        return [self.by_pc[pc] for pc in sorted(self.by_pc)]

    def basic_blocks(self) -> List[BlockStats]:
        """Roll PCs up into the program's basic blocks."""
        if self.program is None:
            raise ValueError("profiler has no program attached; call set_program()")
        ranges = basic_block_ranges(self.program)
        blocks: List[BlockStats] = []
        for block_id, (start, end) in enumerate(ranges):
            block = BlockStats(block_id=block_id, start=start, end=end)
            for pc in range(start, end + 1):
                stats = self.by_pc.get(pc)
                if stats is None:
                    continue
                block.cycles += stats.cycles
                block.compute += stats.compute
                block.mem_stall += stats.mem_stall
                block.stream_stall += stats.stream_stall
            leader = self.by_pc.get(start)
            block.count = leader.count if leader else 0
            blocks.append(block)
        return blocks


def basic_block_ranges(program: Program) -> List[Tuple[int, int]]:
    """Inclusive ``(start, end)`` PC ranges of the program's basic blocks.

    Leaders are PC 0, every branch/jal target, and every instruction after
    a branch or jump (``jalr`` targets are dynamic, so only the fallthrough
    boundary is known statically — the conservative standard treatment).
    """
    n = len(program.instrs)
    if n == 0:
        return []
    leaders = {0}
    for pc, instr in enumerate(program.instrs):
        if instr.op in BRANCH_OPS or instr.op == "jal":
            if 0 <= instr.imm < n:
                leaders.add(instr.imm)
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif instr.op in JUMP_OPS or instr.op == "halt":
            if pc + 1 < n:
                leaders.add(pc + 1)
    ordered = sorted(leaders)
    return [
        (start, (ordered[i + 1] - 1) if i + 1 < len(ordered) else n - 1)
        for i, start in enumerate(ordered)
    ]


@dataclass
class KernelProfile:
    """One kernel's profile plus the run it came from."""

    kernel_name: str
    config_name: str
    profiler: IsaProfiler
    cycles: float
    instructions: int
    bytes_in: int
    outputs: List[bytes] = field(default_factory=list, repr=False)

    @property
    def total_cycles(self) -> float:
        return self.profiler.total_cycles

    @property
    def total_instructions(self) -> int:
        return self.profiler.total_instructions

    def report(self, top: int = 10) -> str:
        """Hot-spot text report: block ranking + per-PC attribution."""
        prof = self.profiler
        total = prof.total_cycles or 1.0
        lines = [
            f"profile {self.kernel_name} on {self.config_name}: "
            f"{prof.total_instructions} instrs, {prof.total_cycles:.0f} cycles, "
            f"{prof.total_cycles / self.bytes_in:.3f} cyc/B"
            if self.bytes_in
            else f"profile {self.kernel_name} on {self.config_name}",
        ]
        mem = sum(s.mem_stall for s in prof.by_pc.values())
        stream = sum(s.stream_stall for s in prof.by_pc.values())
        compute = sum(s.compute for s in prof.by_pc.values())
        lines.append(
            f"attribution : compute {compute / total:6.1%}  "
            f"mem-stall {mem / total:6.1%}  stream-stall {stream / total:6.1%}"
        )
        if prof.program is not None:
            lines.append("")
            lines.append(f"{'block':>6} {'pcs':>9} {'execs':>8} {'cycles':>10} {'share':>7}")
            blocks = sorted(prof.basic_blocks(), key=lambda b: -b.cycles)
            for block in blocks[:top]:
                if block.cycles == 0:
                    continue
                lines.append(
                    f"{block.block_id:>6} {block.start:>4}-{block.end:<4} "
                    f"{block.count:>8} {block.cycles:>10.0f} {block.cycles / total:>6.1%}"
                )
        lines.append("")
        lines.append(
            f"{'pc':>4} {'op':<18} {'execs':>8} {'cycles':>10} "
            f"{'comp':>8} {'mem':>8} {'strm':>8} {'share':>7}"
        )
        hot = sorted(prof.by_pc.values(), key=lambda s: -s.cycles)
        for stats in hot[:top]:
            lines.append(
                f"{stats.pc:>4} {stats.text[:18]:<18} {stats.count:>8} "
                f"{stats.cycles:>10.0f} {stats.compute:>8.0f} {stats.mem_stall:>8.0f} "
                f"{stats.stream_stall:>8.0f} {stats.cycles / total:>6.1%}"
            )
        return "\n".join(lines)


def profile_kernel(
    kernel,
    core_config=None,
    sample_bytes: Optional[int] = None,
) -> KernelProfile:
    """Run ``kernel`` on a profiled stream core and return its profile.

    ``core_config`` defaults to the AssasinSb core (the stream-ISA engine
    this profiler exists to explain); any RISC-V :class:`CoreConfig`
    works. The profile's totals equal the run's cycle/instruction counts
    exactly — asserted here, not just in tests.
    """
    from repro.config import named_config
    from repro.core.core import CoreModel

    core = core_config or named_config("AssasinSb").core
    engine = CoreModel(core)
    profiler = IsaProfiler()
    engine.profiler = profiler
    from repro.ssd.device import DEFAULT_SAMPLE_BYTES, _SAMPLE_BYTES_BY_KERNEL

    size = sample_bytes or _SAMPLE_BYTES_BY_KERNEL.get(kernel.name, DEFAULT_SAMPLE_BYTES)
    result = engine.run(kernel, kernel.make_inputs(size))
    if abs(profiler.total_cycles - result.cycles) > 1e-9:
        raise AssertionError(
            f"profiler lost cycles: {profiler.total_cycles} != {result.cycles}"
        )
    if profiler.total_instructions != result.instructions:
        raise AssertionError(
            f"profiler lost instructions: "
            f"{profiler.total_instructions} != {result.instructions}"
        )
    return KernelProfile(
        kernel_name=kernel.name,
        config_name=core.name,
        profiler=profiler,
        cycles=result.cycles,
        instructions=result.instructions,
        bytes_in=result.bytes_in,
        outputs=result.outputs,
    )
