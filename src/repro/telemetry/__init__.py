"""Unified telemetry: event tracing, counter registry, ISA profiler.

The measurement substrate for every layer of the simulated stack (the
paper's §VI lives on cycle decomposition and utilisation breakdowns, and a
serving system needs the same numbers continuously, not per-experiment):

* :mod:`repro.telemetry.tracer` — nestable spans and instant events on
  named component tracks against simulated nanoseconds, exported as
  Chrome/Perfetto ``trace_event`` JSON (``python -m repro trace``).
* :mod:`repro.telemetry.counters` — the :class:`CounterRegistry` of
  counters/gauges/histograms the serve metrics, firmware recovery path,
  and flash channels publish into.
* :mod:`repro.telemetry.profiler` — per-PC / per-basic-block cycle
  attribution (compute vs mem-stall vs stream-stall) for kernels on the
  stream cores (``python -m repro profile``).

A :class:`Telemetry` bundle (tracer + registry) threads through
:class:`~repro.ssd.device.ComputationalSSD` into every component. The
default bundle carries the :data:`~repro.telemetry.tracer.NULL_TRACER`, so
instrumentation on hot paths is an allocation-free no-op and simulation
results are bit-identical with telemetry on or off.
"""

from __future__ import annotations

from repro.telemetry.counters import (
    Counter,
    CounterGroup,
    CounterRegistry,
    Gauge,
    Histogram,
)
from repro.telemetry.profiler import (
    IsaProfiler,
    KernelProfile,
    basic_block_ranges,
    profile_kernel,
)
from repro.telemetry.schema import span_tracks, validate_chrome_trace
from repro.telemetry.tracer import NULL_TRACER, NullTracer, TraceError, Tracer, make_tracer

__all__ = [
    "Counter",
    "CounterGroup",
    "CounterRegistry",
    "Gauge",
    "Histogram",
    "IsaProfiler",
    "KernelProfile",
    "NullTracer",
    "NULL_TRACER",
    "Telemetry",
    "TraceError",
    "Tracer",
    "basic_block_ranges",
    "make_tracer",
    "profile_kernel",
    "span_tracks",
    "validate_chrome_trace",
]


class Telemetry:
    """One device's telemetry bundle: a tracer plus a counter registry.

    Every :class:`~repro.ssd.device.ComputationalSSD` owns one (a fresh
    registry per device, so concurrent devices never share counters); the
    tracer defaults to the shared :data:`NULL_TRACER`.
    """

    __slots__ = ("tracer", "counters")

    def __init__(self, tracer: NullTracer = None, counters: CounterRegistry = None) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.counters = counters if counters is not None else CounterRegistry()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @classmethod
    def tracing(cls, process_name: str = "repro") -> "Telemetry":
        """A bundle with a recording tracer attached."""
        return cls(tracer=Tracer(process_name))
