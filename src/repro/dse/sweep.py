"""Design-space exploration sweep driver (ROADMAP item 4).

Enumerates a grid of device design points — engine count × data-path
geometry (stream-buffer S/P shapes or ping-pong scratchpads) × pipeline
timing model × arbitration policy — and prices every point on three axes:

* **perf**: geometric-mean device-level offload throughput (GB/s) over a
  kernel suite drawn from the fig13/fig14 workloads, run with the fast
  execution engine at the point's Figure 20 clock (``adjusted_config`` +
  ``ClockModel``);
* **power**: total device power from the ``repro.power`` component model;
* **area**: total silicon area from the same model.

Every sampled kernel run is seeded, so a sweep is deterministic end to
end: two runs of the same :class:`SweepSpec` produce byte-identical
reports (CI double-runs and compares them). Optionally, a short serving
probe per point records a tail-latency (p99) figure so arbitration
policies differentiate.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.config import (
    ARBITRATION_POLICIES,
    PIPELINE_MODELS,
    CoreConfig,
    DataSource,
    SSDConfig,
    ScratchpadConfig,
    StreamBufferConfig,
)
from repro.core.timing import ClockModel
from repro.errors import ConfigError
from repro.experiments.common import adjusted_config
from repro.kernels import get_kernel
from repro.power.models import config_cost
from repro.ssd.device import ComputationalSSD

KIB = 1024

#: Default kernel suite: the fig13 streaming kernels that exercise distinct
#: instruction mixes (stat: mul/branch; raid4: xor-dense; psf: the fig14
#: branch-heavy predicate filter).
DEFAULT_KERNELS: Tuple[str, ...] = ("stat", "raid4", "psf")

#: The full fig13/fig14 suite for ``python -m repro dse --full-suite``.
FULL_KERNELS: Tuple[str, ...] = ("stat", "raid4", "raid6", "aes", "psf")

_SB_GEOMETRY = re.compile(r"sb-S(\d+)P(\d+)\Z")

#: Data-path geometry axis. ``sb-S{S}P{P}`` is an AssasinSb-class core with
#: an S-stream × P-page stream buffer; ``sp`` is the AssasinSp-class
#: ping-pong scratchpad core.
GEOMETRY_NAMES: Tuple[str, ...] = ("sb-S8P2", "sb-S8P4", "sb-S4P2", "sp")


@dataclass(frozen=True)
class SweepSpec:
    """One design-space sweep: axes plus measurement parameters."""

    cores: Tuple[int, ...] = (4, 8)
    geometries: Tuple[str, ...] = ("sb-S8P2", "sb-S8P4", "sp")
    pipeline_models: Tuple[str, ...] = PIPELINE_MODELS
    arbitrations: Tuple[str, ...] = ("wrr",)
    kernels: Tuple[str, ...] = DEFAULT_KERNELS
    data_bytes: int = 8 << 20
    sample_bytes: int = 16 * KIB
    seed: int = 7
    #: Serving-probe duration per point in ns; 0 disables the probe (it is
    #: forced on when more than one arbitration policy is swept, otherwise
    #: the policy axis would not differentiate points).
    serve_probe_ns: float = 0.0

    def __post_init__(self) -> None:
        if not (self.cores and self.geometries and self.pipeline_models
                and self.arbitrations and self.kernels):
            raise ConfigError("every sweep axis needs at least one value")
        for geometry in self.geometries:
            point_core(geometry, "static")  # validates the geometry name
        for model in self.pipeline_models:
            if model not in PIPELINE_MODELS:
                raise ConfigError(
                    f"unknown pipeline model {model!r}; known: {PIPELINE_MODELS}"
                )
        for policy in self.arbitrations:
            if policy not in ARBITRATION_POLICIES:
                raise ConfigError(
                    f"unknown arbitration {policy!r}; known: {ARBITRATION_POLICIES}"
                )
        if self.data_bytes <= 0 or self.sample_bytes <= 0:
            raise ConfigError("data_bytes and sample_bytes must be positive")

    @property
    def num_points(self) -> int:
        return (len(self.cores) * len(self.geometries)
                * len(self.pipeline_models) * len(self.arbitrations))


@dataclass
class PointResult:
    """One priced design point."""

    label: str
    num_cores: int
    geometry: str
    pipeline_model: str
    arbitration: str
    period_ns: float
    frequency_ghz: float
    throughput_gbps: Dict[str, float] = field(default_factory=dict)
    perf_gbps: float = 0.0
    power_mw: float = 0.0
    area_mm2: float = 0.0
    instructions: int = 0
    sample_cycles: float = 0.0
    branch_mispredicts: int = 0
    hazard_stall_cycles: float = 0.0
    serve_p99_us: Optional[float] = None
    pareto: bool = False


@dataclass
class SweepResult:
    """All points of one sweep plus the Pareto labels."""

    spec: SweepSpec
    points: List[PointResult] = field(default_factory=list)

    @property
    def pareto_points(self) -> List[PointResult]:
        return [p for p in self.points if p.pareto]


def point_core(geometry: str, pipeline_model: str) -> CoreConfig:
    """The core config of one geometry axis value (mirrors Table IV shapes)."""
    match = _SB_GEOMETRY.match(geometry)
    if match:
        streams, pages = int(match.group(1)), int(match.group(2))
        return CoreConfig(
            name=geometry,
            data_source=DataSource.FLASH_STREAM,
            scratchpad=ScratchpadConfig(size_bytes=64 * KIB),
            streambuffer=StreamBufferConfig(
                num_streams=streams, pages_per_stream=pages, page_bytes=4096
            ),
            stream_isa=True,
            pipeline_model=pipeline_model,
        )
    if geometry == "sp":
        return CoreConfig(
            name=geometry,
            data_source=DataSource.FLASH_STREAM,
            scratchpad=ScratchpadConfig(size_bytes=64 * KIB),
            pingpong=ScratchpadConfig(size_bytes=32 * KIB),
            pipeline_model=pipeline_model,
        )
    raise ConfigError(
        f"unknown geometry {geometry!r}; expected 'sp' or 'sb-S<n>P<n>'"
    )


def point_config(
    geometry: str, num_cores: int, pipeline_model: str, label: str
) -> SSDConfig:
    """The full (unadjusted) device config of one design point."""
    core = replace(point_core(geometry, pipeline_model), name=label)
    return SSDConfig(name=label, core=core, num_cores=num_cores)


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def evaluate_point(
    spec: SweepSpec,
    num_cores: int,
    geometry: str,
    pipeline_model: str,
    arbitration: str,
    clock: Optional[ClockModel] = None,
) -> PointResult:
    """Price one design point on perf, power, area (and optionally QoS)."""
    label = f"c{num_cores}-{geometry}-{pipeline_model}-{arbitration}"
    raw = point_config(geometry, num_cores, pipeline_model, label)
    clock = clock or ClockModel()
    clock_result = clock.result(raw.core)
    config = adjusted_config(raw)
    cost = config_cost(config)
    point = PointResult(
        label=label,
        num_cores=num_cores,
        geometry=geometry,
        pipeline_model=pipeline_model,
        arbitration=arbitration,
        period_ns=clock_result.period_ns,
        frequency_ghz=config.core.frequency_ghz,
        power_mw=cost.total_power_mw,
        area_mm2=cost.total_area_mm2,
    )
    for kernel_name in spec.kernels:
        kernel = get_kernel(kernel_name)
        device = ComputationalSSD(config)
        inputs = kernel.make_inputs(spec.sample_bytes, seed=spec.seed)
        sample = device.engine.run(kernel, inputs)
        result = device.offload(kernel, spec.data_bytes, sample=sample)
        point.throughput_gbps[kernel_name] = result.throughput_gbps
        point.instructions += sample.instructions
        point.sample_cycles += sample.cycles
        point.branch_mispredicts += sample.pipeline.branch_mispredicts
        point.hazard_stall_cycles += sample.pipeline.hazard_stall_cycles
    point.perf_gbps = _geomean(list(point.throughput_gbps.values()))
    probe_ns = spec.serve_probe_ns
    if probe_ns <= 0 and len(spec.arbitrations) > 1:
        probe_ns = 150_000.0
    if probe_ns > 0:
        from repro.serve import ServeConfig, default_tenants

        report = ComputationalSSD(config).serve(
            default_tenants(),
            ServeConfig(arbitration=arbitration),
            duration_ns=probe_ns,
            seed=spec.seed,
        )
        point.serve_p99_us = max(
            (tm.p99_latency_ns for tm in report.tenants.values()), default=0.0
        ) / 1000.0
    return point


def run_sweep(spec: SweepSpec = SweepSpec()) -> SweepResult:
    """Evaluate every point of the grid and mark the Pareto frontier."""
    from repro.dse.pareto import mark_pareto

    clock = ClockModel()
    result = SweepResult(spec=spec)
    for num_cores in spec.cores:
        for geometry in spec.geometries:
            for pipeline_model in spec.pipeline_models:
                for arbitration in spec.arbitrations:
                    result.points.append(
                        evaluate_point(
                            spec, num_cores, geometry, pipeline_model,
                            arbitration, clock=clock,
                        )
                    )
    mark_pareto(result.points)
    return result
