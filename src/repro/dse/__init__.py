"""Design-space exploration: sweep a grid of device designs, report Pareto.

``python -m repro dse`` drives :func:`run_sweep` over cores × data-path
geometry × pipeline timing model × arbitration policy, pricing every point
on throughput (kernel suite at the per-config clock), power and area
(``repro.power``), then marks the Pareto frontier and renders a table
and/or byte-stable JSON report.
"""

from repro.dse.sweep import (
    DEFAULT_KERNELS,
    FULL_KERNELS,
    GEOMETRY_NAMES,
    PointResult,
    SweepResult,
    SweepSpec,
    evaluate_point,
    point_config,
    point_core,
    run_sweep,
)
from repro.dse.pareto import (
    OBJECTIVES,
    dominates,
    mark_pareto,
    point_record,
    render_table,
    report_json,
    sweep_report,
)

__all__ = [
    "DEFAULT_KERNELS",
    "FULL_KERNELS",
    "GEOMETRY_NAMES",
    "PointResult",
    "SweepResult",
    "SweepSpec",
    "evaluate_point",
    "point_config",
    "point_core",
    "run_sweep",
    "OBJECTIVES",
    "dominates",
    "mark_pareto",
    "point_record",
    "render_table",
    "report_json",
    "sweep_report",
]
