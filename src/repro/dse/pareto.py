"""Pareto-frontier selection and report rendering for DSE sweeps.

A design point dominates another when it is at least as good on every
objective (throughput up, power down, area down) and strictly better on
at least one. The frontier is the set of non-dominated points — the only
designs a rational architect would pick from.

Reports are deterministic by construction: dict keys are sorted, floats
are rounded to fixed precision before serialisation, and point order is
the (deterministic) sweep enumeration order. Two runs of the same spec
therefore emit byte-identical JSON, which CI exploits with a double-run
``cmp``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.dse.sweep import PointResult, SweepResult

#: (attribute, maximise?) triples defining the objective space.
OBJECTIVES = (("perf_gbps", True), ("power_mw", False), ("area_mm2", False))


def dominates(a: PointResult, b: PointResult) -> bool:
    """True when ``a`` Pareto-dominates ``b`` on the objective space."""
    strictly_better = False
    for attr, maximise in OBJECTIVES:
        av, bv = getattr(a, attr), getattr(b, attr)
        if not maximise:
            av, bv = -av, -bv
        if av < bv:
            return False
        if av > bv:
            strictly_better = True
    return strictly_better


def mark_pareto(points: Sequence[PointResult]) -> None:
    """Set ``point.pareto`` on every non-dominated point, in place."""
    for p in points:
        p.pareto = not any(dominates(q, p) for q in points if q is not p)


def _round(value: float, digits: int = 6) -> float:
    return round(value, digits)


def point_record(point: PointResult) -> Dict[str, object]:
    record: Dict[str, object] = {
        "label": point.label,
        "num_cores": point.num_cores,
        "geometry": point.geometry,
        "pipeline_model": point.pipeline_model,
        "arbitration": point.arbitration,
        "period_ns": _round(point.period_ns),
        "frequency_ghz": _round(point.frequency_ghz),
        "perf_gbps": _round(point.perf_gbps),
        "power_mw": _round(point.power_mw),
        "area_mm2": _round(point.area_mm2),
        "throughput_gbps": {
            k: _round(v) for k, v in sorted(point.throughput_gbps.items())
        },
        "instructions": point.instructions,
        "sample_cycles": _round(point.sample_cycles),
        "branch_mispredicts": point.branch_mispredicts,
        "hazard_stall_cycles": _round(point.hazard_stall_cycles),
        "pareto": point.pareto,
    }
    if point.serve_p99_us is not None:
        record["serve_p99_us"] = _round(point.serve_p99_us)
    return record


def sweep_report(result: SweepResult) -> Dict[str, object]:
    """JSON-serialisable report of one sweep (stable key order)."""
    spec = result.spec
    return {
        "spec": {
            "cores": list(spec.cores),
            "geometries": list(spec.geometries),
            "pipeline_models": list(spec.pipeline_models),
            "arbitrations": list(spec.arbitrations),
            "kernels": list(spec.kernels),
            "data_bytes": spec.data_bytes,
            "sample_bytes": spec.sample_bytes,
            "seed": spec.seed,
        },
        "num_points": len(result.points),
        "points": [point_record(p) for p in result.points],
        "pareto": [p.label for p in result.pareto_points],
    }


def report_json(result: SweepResult) -> str:
    """The canonical byte-stable serialisation of a sweep report."""
    return json.dumps(sweep_report(result), indent=2, sort_keys=True) + "\n"


def render_table(result: SweepResult) -> str:
    """Fixed-width text table of all points, frontier rows starred."""
    headers = ["point", "GB/s", "mW", "mm^2", "GHz", "mispred", "hazard"]
    rows: List[List[str]] = []
    for p in result.points:
        rows.append([
            ("* " if p.pareto else "  ") + p.label,
            f"{p.perf_gbps:.3f}",
            f"{p.power_mw:.1f}",
            f"{p.area_mm2:.3f}",
            f"{p.frequency_ghz:.3f}",
            str(p.branch_mispredicts),
            f"{p.hazard_stall_cycles:.0f}",
        ])
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    lines.append("")
    frontier = ", ".join(p.label for p in result.pareto_points)
    lines.append(f"Pareto frontier ({len(result.pareto_points)} of "
                 f"{len(result.points)} points): {frontier}")
    return "\n".join(lines)
