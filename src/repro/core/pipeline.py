"""In-order 5-stage pipeline timing model (ibex-class RV32IM core).

Every instruction costs one base cycle; extras come from the pluggable
:mod:`repro.core.coster` timing model selected by
``CoreConfig.pipeline_model``:

* ``"static"`` — the historical fixed-latency model: multiplier/divider
  occupancy for M-extension ops, a flat taken-branch redirect penalty
  (branch resolved in EX), data-side stalls from the memory hierarchy for
  loads/stores, and stream-head FIFO latency for stream instructions
  (0 extra when the prefetched head FIFO has the data, the common case).
* ``"predictive"`` — realistic microarchitectural timing: BTB + tournament
  branch prediction, load-use hazard bubbles with forwarding, and
  operand-dependent multi-cycle mul/div (see ``coster.PredictiveCoster``).

The model is deliberately scalar and in-order: that is the compute-engine
class every configuration in Table IV uses (8x in-order RISC-V @ 1 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.coster import instr_reads, make_coster
from repro.isa.instructions import InstrKind
from repro.isa.interpreter import StepInfo
from repro.mem.hierarchy import AccessType, MemoryHierarchy


@dataclass(frozen=True)
class PipelineParams:
    """Latency knobs of the in-order pipeline.

    The first block parameterises the ``"static"`` timing model (and the
    predictive model's fallbacks); the second block only takes effect under
    ``pipeline_model="predictive"``, one knob per feature so ablations
    compose (e.g. predictor on / hazards off).
    """

    mul_extra_cycles: int = 2  # 3-cycle multiplier
    div_extra_cycles: int = 11  # 12-cycle iterative divider
    taken_branch_penalty: int = 1  # redirect bubble
    jump_penalty: int = 1
    stream_head_extra: int = 0  # prefetched head FIFO: no stall when ready

    # -- predictive-model knobs ----------------------------------------------
    branch_predictor: str = "tournament"  # "tournament" | "none" (flat penalty)
    mispredict_penalty: int = 2  # redirect on a wrong fetch direction/target
    btb_entries: int = 64
    bimodal_entries: int = 256
    gshare_entries: int = 256
    chooser_entries: int = 256
    history_bits: int = 8
    hazard_detection: bool = True
    load_use_bubble: int = 1  # dependent op right after a load (forwarded)
    mul_cycles: int = 1  # 2-cycle pipelined Wallace-tree multiplier
    div_base_cycles: int = 2  # divider pre/post-processing
    div_bits_per_cycle: int = 4  # radix-16 iterative quotient retirement
    div_early_exit: bool = True  # operand-dependent early termination


@dataclass
class PipelineStats:
    """Where cycles went, by instruction kind."""

    cycles_by_kind: Dict[InstrKind, float] = field(default_factory=dict)
    branch_penalty_cycles: float = 0.0
    muldiv_extra_cycles: float = 0.0
    hazard_stall_cycles: float = 0.0
    branch_mispredicts: int = 0

    def add(self, kind: InstrKind, cycles: float) -> None:
        self.cycles_by_kind[kind] = self.cycles_by_kind.get(kind, 0.0) + cycles


class PipelineModel:
    """Charges cycles for interpreter steps through a memory hierarchy.

    ``cost`` dispatches to the costing path of the selected timing model;
    the coster object carries any per-run microarchitectural state
    (predictor tables, hazard latch) and lives exactly as long as the
    stats, so retimed chunked runs keep warm predictor state.
    """

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        params: PipelineParams = PipelineParams(),
        model: str = "static",
    ) -> None:
        self.hierarchy = hierarchy
        self.params = params
        self.model = model
        self.coster = make_coster(model, params)
        self.stats = PipelineStats()
        self.cost = self._cost_static if self.coster.is_static else self._cost_predictive

    def _cost_static(self, info: StepInfo, cycle: float) -> float:
        """Cycles consumed by this step (>= 1 for executed instructions)."""
        p = self.params
        cycles = 1.0
        kind = info.kind
        if kind is InstrKind.MUL:
            cycles += p.mul_extra_cycles
            self.stats.muldiv_extra_cycles += p.mul_extra_cycles
        elif kind is InstrKind.DIV:
            cycles += p.div_extra_cycles
            self.stats.muldiv_extra_cycles += p.div_extra_cycles
        elif kind is InstrKind.BRANCH:
            if info.branch_taken:
                cycles += p.taken_branch_penalty
                self.stats.branch_penalty_cycles += p.taken_branch_penalty
        elif kind is InstrKind.JUMP:
            cycles += p.jump_penalty
            self.stats.branch_penalty_cycles += p.jump_penalty
        elif kind in (InstrKind.LOAD, InstrKind.STORE) and info.mem_addr is not None:
            access = AccessType.STORE if info.mem_is_write else AccessType.LOAD
            result = self.hierarchy.access(
                pc=info.pc, addr=info.mem_addr, size=info.mem_size, access=access, cycle=cycle
            )
            cycles += result.stall_cycles
        elif kind in (InstrKind.STREAM_LOAD, InstrKind.STREAM_STORE):
            cycles += p.stream_head_extra
        # The base cycle is 'compute'; extra stall cycles were already booked
        # into the hierarchy's buckets for memory ops. Book the compute cycle:
        self.hierarchy.add_compute_cycles(1.0)
        non_mem_extra = cycles - 1.0
        if kind in (InstrKind.MUL, InstrKind.DIV, InstrKind.BRANCH, InstrKind.JUMP):
            # Occupancy/redirect bubbles are compute-side cycles, not memory.
            self.hierarchy.add_compute_cycles(non_mem_extra)
        self.stats.add(kind, cycles)
        return cycles

    def _cost_predictive(self, info: StepInfo, cycle: float) -> float:
        """Predictive-model costing: same protocol, stateful coster."""
        c = self.coster
        stats = self.stats
        kind = info.kind
        instr = info.instr
        reads = instr_reads(instr)
        cycles = 1.0
        mem_stall = 0.0
        stream_extra = 0.0
        if kind is InstrKind.MUL:
            extra, hz = c.mul(reads)
            cycles += extra + hz
            stats.muldiv_extra_cycles += extra
        elif kind is InstrKind.DIV:
            a, b = info.operands
            extra, hz = c.div(reads, a, b, instr.op in ("div", "rem"))
            cycles += extra + hz
            stats.muldiv_extra_cycles += extra
        elif kind is InstrKind.BRANCH:
            penalty, hz, mispredicted = c.branch(
                info.pc, reads, info.branch_taken, instr.imm
            )
            cycles += penalty + hz
            stats.branch_penalty_cycles += penalty
            if mispredicted:
                stats.branch_mispredicts += 1
        elif kind is InstrKind.JUMP:
            penalty, hz = c.jump(info.pc, reads, info.branch_target)
            cycles += penalty + hz
            stats.branch_penalty_cycles += penalty
        elif kind in (InstrKind.LOAD, InstrKind.STORE) and info.mem_addr is not None:
            hz = c.mem(reads, 0 if info.mem_is_write else instr.rd)
            access = AccessType.STORE if info.mem_is_write else AccessType.LOAD
            result = self.hierarchy.access(
                pc=info.pc, addr=info.mem_addr, size=info.mem_size, access=access, cycle=cycle
            )
            mem_stall = result.stall_cycles
            cycles += hz + mem_stall
        elif kind is InstrKind.STREAM_LOAD:
            hz = c.stream_load(reads, instr.rd if instr.op == "sload" else 0)
            stream_extra = self.params.stream_head_extra
            cycles += hz + stream_extra
        elif kind is InstrKind.STREAM_STORE:
            hz = c.simple(reads)
            stream_extra = self.params.stream_head_extra
            cycles += hz + stream_extra
        else:  # ALU / UPPER / STREAM_CTRL / SYSTEM
            hz = c.simple(reads)
            cycles += hz
        if hz:
            stats.hazard_stall_cycles += hz
        # Hazard bubbles, unit occupancy and redirect penalties are
        # compute-side; memory stalls were booked by the hierarchy and the
        # stream-head extra stays a memory-structure cost, as in static mode.
        self.hierarchy.add_compute_cycles(cycles - mem_stall - stream_extra)
        stats.add(kind, cycles)
        return cycles
