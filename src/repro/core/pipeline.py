"""In-order 5-stage pipeline timing model (ibex-class RV32IM core).

Every instruction costs one base cycle; the model adds:

* multiplier/divider occupancy for M-extension ops,
* a taken-branch redirect penalty (branch resolved in EX),
* data-side stalls from the memory hierarchy for loads/stores,
* stream-head FIFO latency for stream instructions (0 extra when the
  prefetched head FIFO has the data, which is the common case).

The model is deliberately scalar and in-order: that is the compute-engine
class every configuration in Table IV uses (8x in-order RISC-V @ 1 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.instructions import InstrKind
from repro.isa.interpreter import StepInfo
from repro.mem.hierarchy import AccessType, MemoryHierarchy


@dataclass(frozen=True)
class PipelineParams:
    """Latency knobs of the in-order pipeline."""

    mul_extra_cycles: int = 2  # 3-cycle multiplier
    div_extra_cycles: int = 11  # 12-cycle iterative divider
    taken_branch_penalty: int = 1  # redirect bubble
    jump_penalty: int = 1
    stream_head_extra: int = 0  # prefetched head FIFO: no stall when ready


@dataclass
class PipelineStats:
    """Where cycles went, by instruction kind."""

    cycles_by_kind: Dict[InstrKind, float] = field(default_factory=dict)
    branch_penalty_cycles: float = 0.0
    muldiv_extra_cycles: float = 0.0

    def add(self, kind: InstrKind, cycles: float) -> None:
        self.cycles_by_kind[kind] = self.cycles_by_kind.get(kind, 0.0) + cycles


class PipelineModel:
    """Charges cycles for interpreter steps through a memory hierarchy."""

    def __init__(self, hierarchy: MemoryHierarchy, params: PipelineParams = PipelineParams()) -> None:
        self.hierarchy = hierarchy
        self.params = params
        self.stats = PipelineStats()

    def cost(self, info: StepInfo, cycle: float) -> float:
        """Cycles consumed by this step (>= 1 for executed instructions)."""
        p = self.params
        cycles = 1.0
        kind = info.kind
        if kind is InstrKind.MUL:
            cycles += p.mul_extra_cycles
            self.stats.muldiv_extra_cycles += p.mul_extra_cycles
        elif kind is InstrKind.DIV:
            cycles += p.div_extra_cycles
            self.stats.muldiv_extra_cycles += p.div_extra_cycles
        elif kind is InstrKind.BRANCH:
            if info.branch_taken:
                cycles += p.taken_branch_penalty
                self.stats.branch_penalty_cycles += p.taken_branch_penalty
        elif kind is InstrKind.JUMP:
            cycles += p.jump_penalty
            self.stats.branch_penalty_cycles += p.jump_penalty
        elif kind in (InstrKind.LOAD, InstrKind.STORE) and info.mem_addr is not None:
            access = AccessType.STORE if info.mem_is_write else AccessType.LOAD
            result = self.hierarchy.access(
                pc=info.pc, addr=info.mem_addr, size=info.mem_size, access=access, cycle=cycle
            )
            cycles += result.stall_cycles
        elif kind in (InstrKind.STREAM_LOAD, InstrKind.STREAM_STORE):
            cycles += p.stream_head_extra
        # The base cycle is 'compute'; extra stall cycles were already booked
        # into the hierarchy's buckets for memory ops. Book the compute cycle:
        self.hierarchy.add_compute_cycles(1.0)
        non_mem_extra = cycles - 1.0
        if kind in (InstrKind.MUL, InstrKind.DIV, InstrKind.BRANCH, InstrKind.JUMP):
            # Occupancy/redirect bubbles are compute-side cycles, not memory.
            self.hierarchy.add_compute_cycles(non_mem_extra)
        self.stats.add(kind, cycles)
        return cycles
