"""UDP accelerator-lane model (the paper's application-specific comparator).

UDP (Fang et al.) is an accelerator for unstructured data processing: lanes
compute out of private scratchpads that the firmware fills by copying from
SSD DRAM, and its ISA uses multiway dispatch and fused operations to cut
instruction counts on branchy, byte-oriented code.

We model a lane by running the kernel's memory-form program on a
scratchpad-only engine (the :class:`~repro.core.core.CoreModel` handles the
staging layout) and scaling the cycle count by the kernel's *UDP ISA
factor* — the fraction of instructions that survive multiway dispatch and
operation fusion. The factor is near 0.5 for parser-style state machines
(UDP's sweet spot), mild for predicate evaluation, and 1.0 for arithmetic
kernels that gain nothing from the dispatch tricks. The staging copies are
charged to SSD DRAM traffic, which is how the paper explains accelerators
*increasing* DRAM pressure (Section VI-B).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.config import CoreConfig, udp_core
from repro.core.core import CoreModel, CoreRunResult
from repro.core.pipeline import PipelineParams
from repro.mem.dram import DRAMModel

#: Default cycle-scaling factors by kernel name (fraction of baseline
#: instruction work remaining after UDP's multiway dispatch + fusion).
UDP_ISA_FACTORS: Dict[str, float] = {
    "parse": 0.45,
    "filter": 0.70,
    "select": 0.70,
    "psf": 0.55,
    "stat": 0.90,
    "scan": 0.95,
}
_DEFAULT_FACTOR = 1.0


class UDPLaneModel:
    """One UDP lane: scratchpad-staged compute with an ISA-efficiency scale."""

    def __init__(self, core: Optional[CoreConfig] = None, dram: Optional[DRAMModel] = None) -> None:
        self.core = core or udp_core()
        self.dram = dram
        self._model = CoreModel(self.core, dram=dram, pipeline_params=PipelineParams())

    def isa_factor(self, kernel) -> float:
        explicit = getattr(kernel, "udp_isa_factor", None)
        if explicit is not None:
            return explicit
        return UDP_ISA_FACTORS.get(kernel.name, _DEFAULT_FACTOR)

    def run(self, kernel, inputs: Sequence[bytes]) -> CoreRunResult:
        """Run ``kernel`` on the lane; cycles reflect the UDP ISA."""
        result = self._model.run(kernel, inputs)
        factor = self.isa_factor(kernel)
        # Firmware copies staged data DRAM -> scratchpad and results back.
        self._model.dram.add_traffic("core_fill", result.bytes_in)
        self._model.dram.add_traffic("core_writeback", result.bytes_out)
        return replace(
            result,
            config_name=self.core.name,
            cycles=result.cycles * factor,
            dram_traffic=self._model.dram.traffic,
        )
