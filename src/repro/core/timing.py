"""Clock-period model for the Table IV cores (paper Figure 20/21).

The anchor design is a classical five-stage in-order pipeline (IF, DE/RR,
EX, MEM, WB) synthesised at a 14 nm-class node. The MEM stage holds the
data-side memory structure; its access time (from the cacti-lite SRAM
model) determines whether the structure fits in one cycle, needs two, or —
for the stream buffer's small prefetched head FIFO — is so fast that the
critical path shifts to instruction fetch, shortening the whole cycle.

Paper findings reproduced here:

* stream buffer head FIFO reaches ~0.5 ns even with a 64 B interface, so
  the ``AssasinSb`` clock period drops ~11 % (critical path becomes IF);
* a 64 KiB scratchpad with an 8 B port needs 2 cycles at 1 GHz, and the
  two-cycle split brings no cycle-time benefit (``AssasinSp`` keeps the
  1 ns period and pays the extra access cycle);
* cache-fronted configurations keep the 1 ns period (the pipelined L1
  access bounds MEM).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.config import CoreConfig
from repro.power.cacti import (
    SRAMSpec,
    scratchpad_spec,
    sram_access_time_ns,
    streambuffer_head_fifo_spec,
)

# Synthesised stage delays excluding the data-memory structure (ns).
STAGE_DELAYS_NS: Dict[str, float] = {
    "IF": 0.89,
    "DE": 0.80,
    "EX": 0.85,
    "WB": 0.62,
}

BASE_PERIOD_NS = 1.0  # the 1 GHz design point of Table IV


@dataclass(frozen=True)
class ClockResult:
    """Clock period plus any multi-cycle access requirement."""

    period_ns: float
    scratchpad_cycles: int  # cycles per scratchpad access at this period
    critical_stage: str


def mem_stage_structure(core: CoreConfig) -> SRAMSpec:
    """The structure sitting in the MEM stage for this core."""
    if core.streambuffer is not None:
        return streambuffer_head_fifo_spec(width=core.streambuffer.max_access_bytes)
    if core.l1d is not None:
        return SRAMSpec(
            size_bytes=core.l1d.size_bytes,
            port_width_bytes=8,
            ways=core.l1d.ways,
            name="L1D",
        )
    if core.scratchpad is not None:
        return scratchpad_spec(core.scratchpad.size_bytes, core.scratchpad.port_width_bytes)
    if core.pingpong is not None:
        return scratchpad_spec(core.pingpong.size_bytes, core.pingpong.port_width_bytes)
    return SRAMSpec(size_bytes=1024, name="regfile-only")


def clock_period_ns(core: CoreConfig) -> ClockResult:
    """Clock period and scratchpad multi-cycle requirement for a core."""
    other_stages = max(STAGE_DELAYS_NS.values())
    structure = mem_stage_structure(core)
    access_ns = sram_access_time_ns(structure)

    if core.streambuffer is not None and core.l1d is None:
        # Pure stream configuration: MEM holds only the fast head FIFO, the
        # critical path shifts to IF.
        period = max(other_stages, access_ns)
        critical = "IF" if period == other_stages else "MEM"
        sp_cycles = _scratchpad_cycles(core, period)
        return ClockResult(period_ns=period, scratchpad_cycles=sp_cycles, critical_stage=critical)

    if core.l1d is not None:
        # Pipelined cache access bounds MEM at the base period.
        period = BASE_PERIOD_NS
        return ClockResult(
            period_ns=period,
            scratchpad_cycles=_scratchpad_cycles(core, period),
            critical_stage="MEM",
        )

    # Scratchpad-fronted core (AssasinSp, UDP lane): the large random-access
    # scratchpad cannot be usefully split, so the period stays at the base
    # 1 ns and accesses that exceed it become 2-cycle (paper Section VI-F).
    period = BASE_PERIOD_NS
    return ClockResult(
        period_ns=period,
        scratchpad_cycles=_scratchpad_cycles(core, period),
        critical_stage="MEM",
    )


def _scratchpad_cycles(core: CoreConfig, period_ns: float) -> int:
    pad = core.scratchpad or core.pingpong
    if pad is None:
        return 1
    access = sram_access_time_ns(scratchpad_spec(pad.size_bytes, pad.port_width_bytes))
    return cycles_for_access(access, period_ns)


def cycles_for_access(access_ns: float, period_ns: float) -> int:
    """Whole cycles an ``access_ns`` structure access occupies at ``period_ns``.

    Exact ceiling with a relative epsilon: an access that overshoots a cycle
    boundary by less than one part in 1e9 still fits (float noise from the
    cacti-lite model must not buy a spurious extra cycle). The former
    ``int(x * 1000)`` milli-ns fixed-point trick truncated non-integer
    periods (e.g. the ~0.89 ns AssasinSb point) and could over-count.
    """
    return max(1, math.ceil(access_ns / period_ns - 1e-9))


class ClockModel:
    """Per-config clock results, memoised.

    Keyed by the (frozen, hashable) ``CoreConfig`` value itself: DSE sweeps
    legitimately produce many variants, and a name-keyed memo would alias
    distinct geometries that share a label.
    """

    def __init__(self) -> None:
        self._cache: Dict[CoreConfig, ClockResult] = {}

    def result(self, core: CoreConfig) -> ClockResult:
        if core not in self._cache:
            self._cache[core] = clock_period_ns(core)
        return self._cache[core]

    def frequency_ghz(self, core: CoreConfig) -> float:
        return 1.0 / self.result(core).period_ns
