"""Pluggable cycle-costing models: the ``CycleCoster`` protocol.

Every cycle charged to an executed instruction — by the reference
:class:`~repro.core.pipeline.PipelineModel`, by the fast engine's static
superblock batching, or by its dynamic-op closures — is priced by exactly
one coster object selected through ``CoreConfig.pipeline_model``:

* ``"static"`` (:class:`StaticCoster`) — the historical fixed-latency
  model: per-kind integer extras, a flat taken-branch redirect penalty,
  constant multiplier/divider occupancy. Costs are compile-time constants,
  which is what lets the fast engine batch whole superblocks into a single
  clock update.
* ``"predictive"`` (:class:`PredictiveCoster`) — realistic in-order RV32IM
  timing: a BTB + tournament (bimodal/gshare with chooser) branch
  predictor replaces the flat taken-branch penalty, a load-use hazard
  latch inserts a 1-cycle bubble only when a dependent op immediately
  follows a load (full forwarding otherwise), the multiplier is a
  pipelined Wallace tree, and the divider is a radix-16 iterative unit
  with operand-dependent early exit. Costs depend on run-time state, so
  both engines call the *same* coster object once per retired instruction
  in program order — bit-identity between engines holds by construction.

The coster is per-run state (it lives on the ``PipelineModel``); decoded
programs stay stateless and shareable. Costers are never consulted for
aborted steps (stream stalls, EOS, traps): neither engine retires those,
so predictor/hazard state cannot diverge across engines.

All returned latencies are small integers; summed with the base cycle
they stay exactly representable, so batched float accumulation remains
bit-identical regardless of grouping (the same exactness argument the
fast path has always relied on).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigError
from repro.isa.instructions import instr_reads  # noqa: F401  (re-export)

#: Timing models understood by ``make_coster`` (mirrored by
#: ``repro.config.PIPELINE_MODELS``; a unit test pins the two together).
COSTER_MODELS: Tuple[str, ...] = ("static", "predictive")

#: Branch-direction predictors of the predictive model. ``"none"`` keeps
#: the static flat taken-branch penalty (hazards and mul/div timing still
#: apply), so predictor/hazard/latency ablations compose independently.
BRANCH_PREDICTORS: Tuple[str, ...] = ("tournament", "none")

_SIGN_BIT = 0x80000000
_WRAP = 0x100000000


def div_latency(a: int, b: int, signed: bool, params) -> int:
    """Occupancy of the radix-16 iterative divider beyond the base cycle.

    ``a``/``b`` are the architectural 32-bit operand values. The unit
    retires ``div_bits_per_cycle`` quotient bits per cycle and exits as
    soon as the remaining quotient bits are known: division by zero and
    ``|a| < |b|`` (quotient 0) resolve in the fixed ``div_base_cycles``
    pre/post-processing alone. With ``div_early_exit`` off the divider
    always runs the full ``div_extra_cycles`` (the static worst case).
    """
    if not params.div_early_exit:
        return params.div_extra_cycles
    if signed:
        if a & _SIGN_BIT:
            a = _WRAP - a
        if b & _SIGN_BIT:
            b = _WRAP - b
    if b == 0 or a < b:
        return params.div_base_cycles
    qbits = a.bit_length() - b.bit_length() + 1
    return params.div_base_cycles + -(-qbits // params.div_bits_per_cycle)


class StaticCoster:
    """Fixed per-kind latencies (the historical timing model).

    Carries the parameter values the static costing paths read; the
    arithmetic itself stays in the callers (``PipelineModel._cost_static``
    and the fast engine's compile-time cost tables), byte-for-byte the
    code that the golden fingerprints were recorded against.
    """

    is_static = True

    def __init__(self, params) -> None:
        self.params = params


class PredictiveCoster:
    """Realistic in-order RV32IM timing: predictor + hazards + iterative units.

    One method per call-site shape; each returns integer extra cycles (and
    bucket attributions) beyond the 1-cycle base, mutating predictor and
    hazard-latch state as a side effect. Callers must invoke exactly one
    method per retired instruction, in program order.
    """

    is_static = False

    def __init__(self, params) -> None:
        self.params = params
        if params.branch_predictor not in BRANCH_PREDICTORS:
            raise ConfigError(
                f"unknown branch predictor {params.branch_predictor!r}; "
                f"known: {BRANCH_PREDICTORS}"
            )
        for knob in ("btb_entries", "bimodal_entries", "gshare_entries",
                     "chooser_entries", "div_bits_per_cycle"):
            if getattr(params, knob) <= 0:
                raise ConfigError(f"pipeline parameter {knob} must be positive")
        if params.history_bits < 0:
            raise ConfigError("history_bits cannot be negative")
        self._predict = params.branch_predictor == "tournament"
        self._hazards = params.hazard_detection
        self._bubble = params.load_use_bubble
        self._mul_extra = params.mul_cycles
        self._mispredict = params.mispredict_penalty
        self._taken_pen = params.taken_branch_penalty
        self._jump_pen = params.jump_penalty
        # Load-use latch: destination of the immediately-preceding load.
        self._latch = 0
        # Tournament predictor state: 2-bit counters initialised weakly
        # not-taken / weakly-bimodal, empty BTB, cleared global history.
        self._bn = params.bimodal_entries
        self._gn = params.gshare_entries
        self._cn = params.chooser_entries
        self._tn = params.btb_entries
        self._bimodal = [1] * self._bn
        self._gshare = [1] * self._gn
        self._chooser = [1] * self._cn
        self._btb = [(-1, -1)] * self._tn
        self._history = 0
        self._hmask = (1 << params.history_bits) - 1

    # -- hazard latch ---------------------------------------------------------

    def _hazard(self, reads: Tuple[int, ...]) -> int:
        latch = self._latch
        if latch and self._hazards and latch in reads:
            return self._bubble
        return 0

    # -- per-shape costing ----------------------------------------------------

    def simple(self, reads: Tuple[int, ...]) -> int:
        """ALU / stream-store / stream-ctrl / system op: hazard bubble only."""
        hz = self._hazard(reads)
        self._latch = 0
        return hz

    def mul(self, reads: Tuple[int, ...]) -> Tuple[int, int]:
        """Wallace-tree multiplier: ``(occupancy extra, hazard bubble)``."""
        hz = self._hazard(reads)
        self._latch = 0
        return self._mul_extra, hz

    def div(self, reads: Tuple[int, ...], a: int, b: int, signed: bool) -> Tuple[int, int]:
        """Iterative divider: operand-dependent ``(extra, hazard bubble)``."""
        hz = self._hazard(reads)
        self._latch = 0
        return div_latency(a, b, signed, self.params), hz

    def mem(self, reads: Tuple[int, ...], load_rd: int) -> int:
        """Load/store: hazard bubble; a load latches its destination."""
        hz = self._hazard(reads)
        self._latch = load_rd
        return hz

    def stream_load(self, reads: Tuple[int, ...], rd: int) -> int:
        """sload/sskip: the stream-head FIFO read latches like a load."""
        hz = self._hazard(reads)
        self._latch = rd
        return hz

    def branch(self, pc: int, reads: Tuple[int, ...], taken: bool,
               target: int) -> Tuple[int, int, bool]:
        """Conditional branch: ``(redirect penalty, hazard, mispredicted)``.

        A branch redirects for free only when the tournament predictor
        says taken *and* the BTB supplies the correct target at fetch;
        every other disagreement with the actual outcome pays the
        ``mispredict_penalty`` redirect.
        """
        hz = self._hazard(reads)
        self._latch = 0
        if not self._predict:
            return (self._taken_pen if taken else 0), hz, False
        bi = pc % self._bn
        gi = (pc ^ self._history) % self._gn
        ci = pc % self._cn
        ti = pc % self._tn
        bim_taken = self._bimodal[bi] >= 2
        gsh_taken = self._gshare[gi] >= 2
        pred_taken = gsh_taken if self._chooser[ci] >= 2 else bim_taken
        btb_hit = self._btb[ti] == (pc, target)
        if taken:
            mispredicted = not (pred_taken and btb_hit)
        else:
            mispredicted = pred_taken
        # Train: direction counters toward the outcome, the chooser toward
        # whichever component was right when they disagreed, history shifts
        # in the outcome, and taken branches install their BTB entry.
        if taken:
            if self._bimodal[bi] < 3:
                self._bimodal[bi] += 1
            if self._gshare[gi] < 3:
                self._gshare[gi] += 1
            self._btb[ti] = (pc, target)
        else:
            if self._bimodal[bi] > 0:
                self._bimodal[bi] -= 1
            if self._gshare[gi] > 0:
                self._gshare[gi] -= 1
        if bim_taken != gsh_taken:
            if gsh_taken == taken:
                if self._chooser[ci] < 3:
                    self._chooser[ci] += 1
            elif self._chooser[ci] > 0:
                self._chooser[ci] -= 1
        self._history = ((self._history << 1) | int(taken)) & self._hmask
        return (self._mispredict if mispredicted else 0), hz, mispredicted

    def jump(self, pc: int, reads: Tuple[int, ...], target: int) -> Tuple[int, int]:
        """jal/jalr: ``(redirect penalty, hazard)``; BTB hits redirect free."""
        hz = self._hazard(reads)
        self._latch = 0
        if not self._predict:
            return self._jump_pen, hz
        ti = pc % self._tn
        hit = self._btb[ti] == (pc, target)
        self._btb[ti] = (pc, target)
        return (0 if hit else self._jump_pen), hz


def make_coster(model: str, params):
    """The :class:`CycleCoster` for a ``CoreConfig.pipeline_model`` value."""
    if model == "static":
        return StaticCoster(params)
    if model == "predictive":
        return PredictiveCoster(params)
    raise ConfigError(f"unknown pipeline model {model!r}; known: {COSTER_MODELS}")
