"""Cycle-approximate core timing: pipeline model, kernel runner, UDP lane.

This package plays the role of Gem5 in the paper's hybrid methodology
(Figure 11): it executes kernels instruction by instruction, charges cycles
through the per-config memory hierarchy, and emits the timed page-level I/O
trace that the flash simulator retimes. Cycle costing is pluggable
(:mod:`repro.core.coster`): the ``"static"`` model keeps the historical
fixed latencies, ``"predictive"`` adds branch prediction, hazard bubbles
and operand-dependent mul/div timing.
"""

from repro.core.coster import (
    PredictiveCoster,
    StaticCoster,
    div_latency,
    instr_reads,
    make_coster,
)
from repro.core.pipeline import PipelineModel, PipelineParams, PipelineStats
from repro.core.core import CoreModel, CoreRunResult, PageTouch
from repro.core.udp import UDPLaneModel, UDP_ISA_FACTORS
from repro.core.timing import ClockModel, clock_period_ns, cycles_for_access

__all__ = [
    "PipelineModel",
    "PipelineParams",
    "PipelineStats",
    "StaticCoster",
    "PredictiveCoster",
    "make_coster",
    "div_latency",
    "instr_reads",
    "CoreModel",
    "CoreRunResult",
    "PageTouch",
    "UDPLaneModel",
    "UDP_ISA_FACTORS",
    "ClockModel",
    "clock_period_ns",
    "cycles_for_access",
]
