"""Cycle-approximate core timing: pipeline model, kernel runner, UDP lane.

This package plays the role of Gem5 in the paper's hybrid methodology
(Figure 11): it executes kernels instruction by instruction, charges cycles
through the per-config memory hierarchy, and emits the timed page-level I/O
trace that the flash simulator retimes.
"""

from repro.core.pipeline import PipelineModel, PipelineParams
from repro.core.core import CoreModel, CoreRunResult, PageTouch
from repro.core.udp import UDPLaneModel, UDP_ISA_FACTORS
from repro.core.timing import ClockModel, clock_period_ns

__all__ = [
    "PipelineModel",
    "PipelineParams",
    "CoreModel",
    "CoreRunResult",
    "PageTouch",
    "UDPLaneModel",
    "UDP_ISA_FACTORS",
    "ClockModel",
    "clock_period_ns",
]
