"""SQL sessions on the live device: queries as first-class serve tenants.

A :class:`SqlSession` wires the whole stack together. It owns one
:class:`~repro.ssd.device.ComputationalSSD`, a TPC-H database generated at
``gen_scale_factor`` (small, for exact row-level execution) whose tables
are mapped to per-table LPA extents sized at ``target_scale_factor`` (the
scale whose *timing* we model), and a
:class:`~repro.serve.scheduler.ServingLayer` where the session appears as
a driven ``sql`` tenant next to whatever OLTP tenants share the device.

Submitting a query:

1. parse → plan (cached per statement text);
2. a :class:`SiteChooser` prices each base-table scan host-vs-device with
   the session's :class:`~repro.analytics.cost.CostSource` *at the current
   simulated instant* — so an auto session with a
   :class:`~repro.sql.cost.LiveCostSource` reacts to bursts and GC storms;
3. the executor computes the exact result rows (site-independent — the
   differential suite pins this), emitting one trace per scan;
4. each scan becomes a train of morsel-sized NVMe commands —
   :class:`ScompCommand` (psf/parse kernels) for device scans,
   :class:`ReadCommand` for host scans — injected through
   :meth:`ServingLayer.submit_driven`, arbitrating against every other
   tenant on the shared event kernel;
5. when the last morsel completes, the host-CPU tail (text parse for
   host scans, binary ingest of the device's reduced output, measured
   relational-operator work scaled to the target SF) is scheduled, and
   the query completes at its end.

GC runs as a horizon-bounded background process on the same kernel, so an
overwriting tenant degrades scans exactly the way the paper's Figure-9
interference experiments describe.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analytics.cost import CostSource, StaticCostSource
from repro.analytics.datagen import generate_database
from repro.analytics.engine import BINARY_DENSITY
from repro.analytics.relalg import Table
from repro.analytics.schema import SCHEMA, TABLE_NAMES
from repro.config import SSDConfig, ServeConfig, assasin_sb_config
from repro.errors import FTLError, SqlError
from repro.ftl.gc import GarbageCollector
from repro.serve.metrics import ServeReport
from repro.serve.scheduler import ServingLayer
from repro.serve.workload import TenantSpec
from repro.sql.cost import LiveCostSource
from repro.sql.executor import ScanExecution, SqlExecutor, SqlResult
from repro.sql.exprs import compile_expr
from repro.sql.parser import parse_sql
from repro.sql.planner import PlannedStatement, ScanNode, and_fold, plan_statement
from repro.ssd.device import ComputationalSSD
from repro.ssd.host_interface import ReadCommand, ScompCommand

POLICIES = ("host", "device", "auto")
#: Pages per injected scan command — one flash-page train small enough to
#: interleave with tenant traffic, large enough to amortise dispatch.
MORSEL_PAGES = 64
SQL_TENANT = "sql"


def table_fingerprint(table: Table) -> str:
    """Order- and value-exact digest of a result table.

    ``repr`` round-trips floats exactly, so two tables fingerprint equal
    iff they hold identical columns, row order, and bit-exact values —
    which is precisely the differential suite's notion of "same result".
    """
    digest = hashlib.sha256()
    digest.update("|".join(table.columns).encode())
    for row in table.iter_rows():
        digest.update(
            ";".join(repr(row[name]) for name in table.columns).encode()
        )
    return digest.hexdigest()


@dataclass(frozen=True)
class TableExtent:
    """One table's carved LPA range inside the sql tenant's region."""

    table: str
    base_lpa: int
    pages: int
    text_bytes: int


@dataclass
class ScanPlacement:
    """One placement decision as the chooser made it."""

    table: str
    site: str
    kernel: str
    pages: int
    pushdown: bool
    est_host_ns: float
    est_device_ns: float
    decided_at_ns: float
    #: Sampled-predicate selectivity folded into the device estimate
    #: (1.0 for unfiltered scans or sources without row data).
    est_selectivity: float = 1.0


@dataclass
class QueryRecord:
    """One submitted query's lifecycle on the simulated device."""

    sql: str
    policy: str
    submitted_ns: float
    result: Optional[SqlResult] = None
    placements: List[ScanPlacement] = field(default_factory=list)
    commands: int = 0
    io_done_ns: Optional[float] = None
    host_tail_ns: float = 0.0
    completed_ns: Optional[float] = None
    _outstanding: int = 0
    _on_done: Optional[Callable[["QueryRecord"], None]] = None

    @property
    def done(self) -> bool:
        return self.completed_ns is not None

    @property
    def latency_ns(self) -> float:
        if self.completed_ns is None:
            raise SqlError("query has not completed yet")
        return self.completed_ns - self.submitted_ns

    @property
    def device_scans(self) -> int:
        return sum(1 for p in self.placements if p.site == "device")

    @property
    def host_scans(self) -> int:
        return sum(1 for p in self.placements if p.site == "host")

    def fingerprint(self) -> str:
        if self.result is None:
            raise SqlError("query has no result")
        return table_fingerprint(self.result.table)


@dataclass
class SqlReport:
    """Everything one session produced: query records + the serve report."""

    policy: str
    records: List[QueryRecord]
    serve: ServeReport

    @property
    def total_latency_ns(self) -> float:
        return sum(r.latency_ns for r in self.records)

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / len(self.records) if self.records else 0.0


class SqlSession:
    """A SQL client sharing one computational SSD with serve tenants."""

    def __init__(
        self,
        config: Optional[SSDConfig] = None,
        *,
        gen_scale_factor: float = 0.004,
        target_scale_factor: Optional[float] = None,
        seed: int = 7,
        policy: str = "auto",
        tenants: Sequence[TenantSpec] = (),
        serve_config: Optional[ServeConfig] = None,
        duration_ns: float = 50_000_000.0,
        cost_source: Optional[CostSource] = None,
        telemetry=None,
        layout_skew: float = 0.0,
        gc_threshold_pages: int = 128,
        gc_interval_ns: float = 500_000.0,
    ) -> None:
        if policy not in POLICIES:
            raise SqlError(f"unknown policy {policy!r}; known: {POLICIES}")
        self.policy = policy
        self.gen_scale_factor = gen_scale_factor
        self.target_scale_factor = (
            target_scale_factor if target_scale_factor is not None else gen_scale_factor
        )
        self.seed = seed
        self.device = ComputationalSSD(
            config or assasin_sb_config(), layout_skew, telemetry=telemetry
        )
        self.db = generate_database(gen_scale_factor, seed=seed)

        # Carve per-table LPA extents (TABLE_NAMES order) sized at the
        # *target* scale factor inside the sql tenant's private region.
        page = self.device.config.flash.page_bytes
        self.extents: Dict[str, TableExtent] = {}
        offset = 0
        for name in TABLE_NAMES:
            text_bytes = SCHEMA[name].bytes_at(self.target_scale_factor)
            pages = max(1, math.ceil(text_bytes / page))
            self.extents[name] = TableExtent(name, offset, pages, text_bytes)
            offset += pages
        # High QoS weight: the analytic tenant's morsels are latency-bound
        # and must not queue behind bulk scomp traffic for *dispatch slots*
        # — device-side congestion should show up on the cores (where the
        # optimiser can see it), not in the submission queue.
        sql_spec = TenantSpec(
            name=SQL_TENANT, weight=8.0, kind="sql",
            pages_per_command=1, region_pages=offset,
        )
        self.layer = ServingLayer(
            self.device,
            list(tenants) + [sql_spec],
            config=serve_config,
            seed=seed,
        )
        # Rebase extents onto the region the layer actually carved.
        base = self.layer.region_base[SQL_TENANT]
        self.extents = {
            n: TableExtent(e.table, e.base_lpa + base, e.pages, e.text_bytes)
            for n, e in self.extents.items()
        }
        for kernel in ("psf", "parse"):
            self.layer.service.ensure_sample(kernel)

        if cost_source is None:
            cost_source = (
                LiveCostSource(self.layer)
                if policy == "auto"
                else StaticCostSource.calibrate(self.device)
            )
        self.cost = cost_source
        self.records: List[QueryRecord] = []
        self._plan_cache: Dict[str, PlannedStatement] = {}
        self._gc = GarbageCollector(self.device.ftl, self.device.array)
        self.gc_threshold_pages = gc_threshold_pages
        self.gc_interval_ns = gc_interval_ns
        registry = self.layer.telemetry.counters
        self._g_invalid = registry.gauge("gc.invalid_pages")
        self._c_collections = registry.counter("gc.collections")
        self._c_relocated = registry.counter("gc.pages_relocated")
        self.layer.begin(duration_ns)
        self.layer.events.spawn(self._gc_driver(duration_ns), label="gc-driver")

    # -- background GC ---------------------------------------------------------

    def _gc_driver(self, horizon_ns: float):
        """Collect whenever invalid pages cross the threshold, until the
        traffic horizon; bounded so :meth:`finish` always drains."""
        sim = self.layer.events
        while sim.now < horizon_ns:
            yield sim.wait_until(min(sim.now + self.gc_interval_ns, horizon_ns))
            invalid = len(self.device.ftl.invalid_pages)
            self._g_invalid.set(float(invalid))
            if invalid < self.gc_threshold_pages:
                continue
            before = self._gc.pages_relocated
            try:
                yield from self._gc.collect_process(sim, sim.now)
            except FTLError:
                continue  # every invalid page sits in an open block
            self._c_collections.inc()
            self._c_relocated.inc(self._gc.pages_relocated - before)
            self._g_invalid.set(float(len(self.device.ftl.invalid_pages)))

    # -- placement -------------------------------------------------------------

    def _choose(self, node: ScanNode, record: QueryRecord) -> str:
        extent = self.extents[node.table]
        kernel = "psf" if node.predicates else "parse"
        now = self.layer.events.now
        est_host = self.cost.host_scan_ns(extent.text_bytes, at_ns=now)
        # Device scans ship back filtered/projected binary tuples: the
        # column fraction bounds the width, the sampled-predicate
        # selectivity (live sources; 1.0 from static ones) the row count.
        fraction = len(node.columns) / len(SCHEMA[node.table].columns)
        selectivity = 1.0
        if node.predicates:
            try:
                predicate = compile_expr(and_fold(node.predicates), {})
            except Exception:
                predicate = None  # scalar-subquery refs etc.: no estimate
            selectivity = self.cost.scan_selectivity(
                self.db[node.table], predicate, at_ns=now
            )
        out_bytes = extent.text_bytes * fraction * BINARY_DENSITY * selectivity
        est_device = (
            self.cost.device_scan_ns(extent.pages, kernel, at_ns=now)
            + out_bytes / self.cost.link_bytes_per_ns
            + self.cost.ingest_binary_ns(out_bytes)
        )
        if self.policy == "auto":
            site = "device" if est_device <= est_host else "host"
        else:
            site = self.policy
        record.placements.append(
            ScanPlacement(
                table=node.table, site=site, kernel=kernel, pages=extent.pages,
                pushdown=bool(node.predicates), est_host_ns=est_host,
                est_device_ns=est_device, decided_at_ns=now,
                est_selectivity=selectivity,
            )
        )
        return site

    # -- query lifecycle -------------------------------------------------------

    def submit(
        self, sql: str, on_done: Optional[Callable[[QueryRecord], None]] = None
    ) -> QueryRecord:
        """Parse, place, execute, and put the query's I/O on the device."""
        planned = self._plan_cache.get(sql)
        if planned is None:
            planned = plan_statement(parse_sql(sql))
            self._plan_cache[sql] = planned
        record = QueryRecord(
            sql=sql, policy=self.policy, submitted_ns=self.layer.events.now
        )
        record._on_done = on_done
        executor = SqlExecutor(
            self.db, chooser=lambda node: self._choose(node, record)
        )
        record.result = executor.execute(planned)
        self.records.append(record)
        commands = [
            (scan, lpas)
            for scan in record.result.scans
            for lpas in self._morsels(scan)
        ]
        record._outstanding = record.commands = len(commands)
        if not commands:  # no base-table scans (not reachable via planner)
            self._finish_query(record)
            return record
        host = self.device.host
        for scan, lpas in commands:
            if scan.site == "device":
                command = ScompCommand(
                    command_id=host.next_id(), kernel=scan.kernel, lpa_lists=[lpas]
                )
            else:
                command = ReadCommand(command_id=host.next_id(), lpas=lpas)
            self.layer.submit_driven(
                SQL_TENANT, command, len(lpas),
                on_complete=lambda cmd, r=record: self._scan_complete(r),
            )
        return record

    def _morsels(self, scan: ScanExecution) -> List[List[int]]:
        extent = self.extents[scan.table]
        return [
            list(
                range(
                    extent.base_lpa + start,
                    extent.base_lpa + min(start + MORSEL_PAGES, extent.pages),
                )
            )
            for start in range(0, extent.pages, MORSEL_PAGES)
        ]

    def _scan_complete(self, record: QueryRecord) -> None:
        record._outstanding -= 1
        if record._outstanding > 0:
            return
        record.io_done_ns = self.layer.events.now
        record.host_tail_ns = self._host_tail(record)
        self.layer.events.schedule(
            record.host_tail_ns,
            lambda: self._finish_query(record),
            label="sql:host-tail",
        )

    def _host_tail(self, record: QueryRecord) -> float:
        """Host CPU after the last morsel: parse raw text for host scans,
        ingest the device's reduced binary output, then the measured
        relational-operator work scaled to the target SF."""
        assert record.result is not None
        tail = 0.0
        for scan in record.result.scans:
            extent = self.extents[scan.table]
            if scan.site == "host":
                tail += self.cost.parse_text_ns(extent.text_bytes)
            else:
                fraction = len(scan.columns) / len(SCHEMA[scan.table].columns)
                reduced = extent.text_bytes * fraction * BINARY_DENSITY
                if scan.pushdown:
                    reduced *= scan.selectivity
                tail += self.cost.ingest_binary_ns(reduced)
        ratio = self.target_scale_factor / self.gen_scale_factor
        tail += self.cost.relational_ns(record.result.table.stats, ratio)
        return tail

    def _finish_query(self, record: QueryRecord) -> None:
        record.completed_ns = self.layer.events.now
        if record._on_done is not None:
            record._on_done(record)

    # -- driving ---------------------------------------------------------------

    def drain(self, record: QueryRecord) -> QueryRecord:
        """Advance the shared event kernel until ``record`` completes."""
        while not record.done and self.layer.events.step():
            pass
        if not record.done:
            raise SqlError("event queue drained before the query completed")
        return record

    def run_serial(self, statements: Sequence[str]) -> List[QueryRecord]:
        """Run statements back-to-back, each submitted as its predecessor
        completes (in simulated time), against live background traffic."""
        return [self.drain(self.submit(sql)) for sql in statements]

    def finish(self) -> SqlReport:
        """Drain every pending event and assemble the session report."""
        serve = self.layer.finish()
        pending = [r for r in self.records if not r.done]
        if pending:
            raise SqlError(f"{len(pending)} queries never completed")
        return SqlReport(policy=self.policy, records=self.records, serve=serve)
