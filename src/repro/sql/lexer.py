"""Hand-rolled SQL lexer.

Token kinds are deliberately few: identifiers/keywords, number and string
literals, and the handful of operators the TPC-H dialect needs. Keywords
are case-insensitive; identifiers are normalised to lower case (TPC-H
column names are lower-case throughout the schema). ``--`` starts a
comment that runs to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import SqlError

KEYWORDS = frozenset(
    """
    select distinct from join semi anti on where and or not in like group by
    having order asc desc limit as union all case when then else end date
    """.split()
)

#: Multi-char operators first so ``<=`` never lexes as ``<`` ``=``.
OPERATORS = ("<=", ">=", "<>", "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ";")


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'eof'
    value: object
    pos: int  # character offset, for error messages

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into a token list terminated by one ``eof`` token."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise SqlError(f"unterminated string literal at offset {i}")
            tokens.append(Token("string", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                seen_dot = seen_dot or text[j] == "."
                j += 1
            lexeme = text[i:j]
            value = float(lexeme) if "." in lexeme else int(lexeme)
            tokens.append(Token("number", value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            low = word.lower()
            if low in KEYWORDS:
                tokens.append(Token("keyword", low, i))
            else:
                tokens.append(Token("ident", low, i))
            i = j
            continue
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                break
        else:
            raise SqlError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("eof", None, n))
    return tokens
