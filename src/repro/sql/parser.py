"""Recursive-descent SQL parser.

Grammar (the subset the 22 TPC-H transcriptions need)::

    statement   := select (UNION ALL select)*
    select      := SELECT [DISTINCT] items FROM source join*
                   [WHERE expr] [GROUP BY name (',' name)*] [HAVING expr]
                   [ORDER BY order (',' order)*] [LIMIT int]
    source      := name | '(' statement ')'
    join        := [SEMI | ANTI] JOIN source ON name '=' name
    items       := '*' | item (',' item)*
    item        := expr [AS name]
    order       := name [ASC | DESC]

Expression precedence, loosest first: OR, AND, NOT, comparison
(= <> < <= > >=, IN, LIKE), additive (+ -), term (* /), unary minus,
primary. ``DATE 'YYYY-MM-DD'`` folds to the schema's integer day number
at parse time. ``(a, b)`` is a tuple expression; ``(SELECT ...)`` in a
value position is an uncorrelated scalar subquery.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analytics.schema import date_to_day
from repro.errors import SqlError
from repro.sql.ast_nodes import (
    BinaryOp,
    CaseExpr,
    Column,
    Expr,
    FuncCall,
    InList,
    Join,
    Like,
    Literal,
    OrderItem,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    TableRef,
    TupleExpr,
    UnaryOp,
    UnionAll,
)
from repro.sql.lexer import Token, tokenize

AGGREGATE_FUNCS = frozenset(("sum", "min", "max", "avg", "count"))
SCALAR_FUNCS = frozenset(("coalesce", "floor", "substring"))
COMPARISONS = ("=", "<>", "<=", ">=", "<", ">")


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing --------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        return self.cur.kind == "keyword" and self.cur.value in words

    def at_op(self, *ops: str) -> bool:
        return self.cur.kind == "op" and self.cur.value in ops

    def accept_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.advance()
            return True
        return False

    def accept_op(self, op: str) -> bool:
        if self.at_op(op):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlError(f"expected {word.upper()}, got {self._describe()}")

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SqlError(f"expected {op!r}, got {self._describe()}")

    def expect_ident(self) -> str:
        if self.cur.kind != "ident":
            raise SqlError(f"expected identifier, got {self._describe()}")
        return self.advance().value  # type: ignore[return-value]

    def _describe(self) -> str:
        tok = self.cur
        if tok.kind == "eof":
            return "end of input"
        return f"{tok.value!r} at offset {tok.pos}"

    # -- statements ------------------------------------------------------------

    def parse_statement(self):
        """statement := select (UNION ALL select)*"""
        first = self.parse_select()
        parts = [first]
        while self.at_keyword("union"):
            self.advance()
            self.expect_keyword("all")
            parts.append(self.parse_select())
        return first if len(parts) == 1 else UnionAll(parts)

    def parse_select(self) -> Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self.parse_select_items()
        self.expect_keyword("from")
        source = self.parse_source()
        joins = []
        while self.at_keyword("join", "semi", "anti"):
            joins.append(self.parse_join())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        group_by: List[str] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.expect_ident())
            while self.accept_op(","):
                group_by.append(self.expect_ident())
        having = None
        if self.accept_keyword("having"):
            having = self.parse_expr()
        order_by: List[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.accept_op(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("limit"):
            tok = self.advance()
            if tok.kind != "number" or not isinstance(tok.value, int):
                raise SqlError("LIMIT expects an integer literal")
            limit = tok.value
        return Select(
            items=items,
            source=source,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def parse_select_items(self) -> List[SelectItem]:
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> SelectItem:
        if self.at_op("*"):
            self.advance()
            return SelectItem(expr=Star())
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        return SelectItem(expr=expr, alias=alias)

    def parse_source(self) -> TableRef:
        if self.accept_op("("):
            sub = self.parse_statement()
            self.expect_op(")")
            return TableRef(subquery=sub)
        return TableRef(name=self.expect_ident())

    def parse_join(self) -> Join:
        kind = "inner"
        if self.accept_keyword("semi"):
            kind = "semi"
        elif self.accept_keyword("anti"):
            kind = "anti"
        self.expect_keyword("join")
        source = self.parse_source()
        self.expect_keyword("on")
        left_key = self.expect_ident()
        self.expect_op("=")
        right_key = self.expect_ident()
        return Join(kind=kind, source=source, left_key=left_key, right_key=right_key)

    def parse_order_item(self) -> OrderItem:
        column = self.expect_ident()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(column=column, descending=descending)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at_keyword("or"):
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.at_keyword("and"):
            self.advance()
            left = BinaryOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        if self.cur.kind == "op" and self.cur.value in COMPARISONS:
            op = self.advance().value
            return BinaryOp(op, left, self.parse_additive())  # type: ignore[arg-type]
        negated = False
        if self.at_keyword("not"):
            # only 'NOT IN' / 'NOT LIKE' reach here (prefix NOT binds above)
            self.advance()
            negated = True
            if not self.at_keyword("in", "like"):
                raise SqlError("expected IN or LIKE after NOT")
        if self.accept_keyword("in"):
            self.expect_op("(")
            values = [self.parse_expr()]
            while self.accept_op(","):
                values.append(self.parse_expr())
            self.expect_op(")")
            return InList(operand=left, values=values, negated=negated)
        if self.accept_keyword("like"):
            tok = self.advance()
            if tok.kind != "string":
                raise SqlError("LIKE expects a string literal pattern")
            like: Expr = Like(operand=left, pattern=tok.value)  # type: ignore[arg-type]
            return UnaryOp("not", like) if negated else like
        if negated:  # pragma: no cover - guarded above
            raise SqlError("dangling NOT")
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_term()
        while self.at_op("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_term())  # type: ignore[arg-type]
        return left

    def parse_term(self) -> Expr:
        left = self.parse_unary()
        while self.at_op("*", "/"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())  # type: ignore[arg-type]
        return left

    def parse_unary(self) -> Expr:
        if self.accept_op("-"):
            return UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.cur
        if tok.kind == "number":
            self.advance()
            return Literal(tok.value)
        if tok.kind == "string":
            self.advance()
            return Literal(tok.value)
        if self.at_keyword("date"):
            self.advance()
            lit = self.advance()
            if lit.kind != "string":
                raise SqlError("DATE expects a 'YYYY-MM-DD' string literal")
            return Literal(_parse_date(lit.value))  # type: ignore[arg-type]
        if self.at_keyword("case"):
            return self.parse_case()
        if self.at_op("*"):
            self.advance()
            return Star()
        if self.at_op("("):
            self.advance()
            if self.at_keyword("select"):
                sub = self.parse_statement()
                self.expect_op(")")
                if not isinstance(sub, Select):
                    raise SqlError("scalar subquery cannot be a UNION")
                return ScalarSubquery(sub)
            first = self.parse_expr()
            if self.accept_op(","):
                items = [first, self.parse_expr()]
                while self.accept_op(","):
                    items.append(self.parse_expr())
                self.expect_op(")")
                return TupleExpr(items)
            self.expect_op(")")
            return first
        if tok.kind == "ident":
            name = self.advance().value
            if self.at_op("("):
                return self.parse_func_call(name)  # type: ignore[arg-type]
            return Column(name)  # type: ignore[arg-type]
        raise SqlError(f"unexpected {self._describe()} in expression")

    def parse_func_call(self, name: str) -> Expr:
        if name not in AGGREGATE_FUNCS and name not in SCALAR_FUNCS:
            raise SqlError(f"unknown function {name!r}")
        self.expect_op("(")
        args: List[Expr] = []
        if not self.at_op(")"):
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
        self.expect_op(")")
        if name == "count":
            if len(args) != 1 or not isinstance(args[0], Star):
                raise SqlError("only COUNT(*) is supported")
        elif any(isinstance(a, Star) for a in args):
            raise SqlError(f"{name.upper()} cannot take '*'")
        elif not args:
            raise SqlError(f"{name.upper()} needs at least one argument")
        return FuncCall(name=name, args=args)

    def parse_case(self) -> Expr:
        self.expect_keyword("case")
        whens = []
        while self.accept_keyword("when"):
            cond = self.parse_expr()
            self.expect_keyword("then")
            result = self.parse_expr()
            whens.append((cond, result))
        if not whens:
            raise SqlError("CASE needs at least one WHEN branch")
        default = None
        if self.accept_keyword("else"):
            default = self.parse_expr()
        self.expect_keyword("end")
        return CaseExpr(whens=whens, default=default)


def _parse_date(text: str) -> int:
    parts = text.split("-")
    if len(parts) != 3:
        raise SqlError(f"bad date literal {text!r}; want 'YYYY-MM-DD'")
    try:
        year, month, day = (int(p) for p in parts)
    except ValueError:
        raise SqlError(f"bad date literal {text!r}; want 'YYYY-MM-DD'") from None
    return date_to_day(year, month, day)


def parse_sql(text: str):
    """Parse one SQL statement; returns a :class:`Select` or :class:`UnionAll`."""
    parser = Parser(tokenize(text))
    stmt = parser.parse_statement()
    parser.accept_op(";")
    if parser.cur.kind != "eof":
        raise SqlError(f"trailing input: {parser._describe()}")
    return stmt


def split_statements(text: str) -> List[str]:
    """Split a batch script on ``;`` outside string literals; drops blanks."""
    out: List[str] = []
    buf: List[str] = []
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "'":
            in_string = not in_string
        if ch == ";" and not in_string:
            stmt = "".join(buf).strip()
            if stmt:
                out.append(stmt)
            buf = []
        else:
            buf.append(ch)
        i += 1
    stmt = "".join(buf).strip()
    if stmt and not _only_comments(stmt):
        out.append(stmt)
    return out


def _only_comments(text: str) -> bool:
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("--"):
            return False
    return True
