"""repro.sql: SQL frontend, planner, and simulated execution sessions."""

from repro.sql.cost import LiveCostSource
from repro.sql.executor import ScanExecution, SqlExecutor, SqlResult
from repro.sql.parser import parse_sql, split_statements
from repro.sql.planner import PlannedStatement, plan_statement
from repro.sql.repl import SqlRepl, render_table
from repro.sql.session import (
    POLICIES,
    QueryRecord,
    SqlReport,
    SqlSession,
    table_fingerprint,
)

__all__ = [
    "LiveCostSource",
    "PlannedStatement",
    "POLICIES",
    "QueryRecord",
    "ScanExecution",
    "SqlExecutor",
    "SqlRepl",
    "SqlReport",
    "SqlResult",
    "SqlSession",
    "parse_sql",
    "plan_statement",
    "render_table",
    "split_statements",
    "table_fingerprint",
]
