"""Live-telemetry cost source for host-vs-device scan placement.

:class:`LiveCostSource` starts from the calibrated
:class:`~repro.analytics.cost.StaticCostSource` rates (sampled off the very
device it prices) and then *listens* to the shared simulation kernel: it
registers as a completion observer on the :class:`ServingLayer`, keeps an
EWMA of observed scomp service time per page, and folds three pressure
terms into every device estimate at decision time:

* **core backlog** — how far in the future the stream-core pool frees up
  (:meth:`PooledResource.free_at` against the current instant), i.e. work
  already committed to the cores;
* **queue pressure** — submission-queue depth + in-flight + spilled
  backlog, scaled by the observed per-command service EWMA, i.e. work
  committed to the device but not yet on a core;
* **GC backlog** — the FTL's *collectible* invalid pages (what the greedy
  collector is about to churn through; invalid pages parked in open write
  points are excluded because no victim can be picked there), priced as
  relocation work stealing channel/plane slots from scans.

The host estimate stays the calibrated one: the host CPU is dedicated to
the query in this model, so its rate does not drift with device load. The
result is the paper's placement story — under tenant bursts or GC storms
the optimiser routes scans to the host, in quiet windows it pushes them
down — driven by the same counters and timelines everything else uses.
"""

from __future__ import annotations

from typing import Optional

from repro.analytics.cost import HostCostModel, StaticCostSource
from repro.ssd.host_interface import ScompCommand

#: Rows sampled (evenly strided) for the pushed-predicate selectivity
#: estimate; enough for the placement decision, cheap enough per query.
SELECTIVITY_SAMPLE_ROWS = 256


class LiveCostSource(StaticCostSource):
    """Telemetry-backed placement costs over one :class:`ServingLayer`."""

    name = "live"

    def __init__(
        self,
        layer,
        host: Optional[HostCostModel] = None,
        ewma_alpha: float = 0.2,
    ) -> None:
        static = StaticCostSource.calibrate(layer.device, host=host)
        super().__init__(
            host=static.host,
            device_ns_per_page=static.device_ns_per_page,
            num_cores=static.num_cores,
            page_bytes=static.page_bytes,
        )
        self.layer = layer
        self.ewma_alpha = ewma_alpha
        self.observations = 0
        #: Observed scomp service per page / per command (None until the
        #: first completion is seen; estimates fall back to static rates).
        self.ewma_ns_per_page: Optional[float] = None
        self.ewma_cmd_ns: Optional[float] = None
        registry = layer.telemetry.counters
        self._g_page = registry.gauge("sql.cost.scomp_ns_per_page")
        self._g_device = registry.gauge("sql.cost.device_scan_ns")
        self._g_host = registry.gauge("sql.cost.host_scan_ns")
        self._g_selectivity = registry.gauge("sql.cost.scan_selectivity")
        self._c_seen = registry.counter("sql.cost.observations")
        layer.add_completion_observer(self._observe)

    # -- telemetry ingestion ---------------------------------------------------

    def _observe(self, cmd) -> None:
        """Fold one completed scomp command into the service-time EWMA."""
        if not isinstance(cmd.command, ScompCommand):
            return
        service_ns = cmd.completed_ns - cmd.dispatched_ns
        if service_ns <= 0 or cmd.pages <= 0:
            return
        alpha = self.ewma_alpha
        per_page = service_ns / cmd.pages
        if self.ewma_ns_per_page is None:
            self.ewma_ns_per_page = per_page
            self.ewma_cmd_ns = service_ns
        else:
            self.ewma_ns_per_page += alpha * (per_page - self.ewma_ns_per_page)
            self.ewma_cmd_ns += alpha * (service_ns - self.ewma_cmd_ns)
        self.observations += 1
        self._c_seen.inc()
        self._g_page.set(self.ewma_ns_per_page)

    # -- pressure terms --------------------------------------------------------

    def core_backlog_ns(self, at_ns: float) -> float:
        """Mean committed-but-unfinished time across the stream cores."""
        cores = self.layer.service.cores
        waits = [max(0.0, cores.free_at(u) - at_ns) for u in range(cores.units)]
        return sum(waits) / len(waits) if waits else 0.0

    def queue_pressure_ns(self) -> float:
        """Queued work not yet on a core, priced at the observed EWMA."""
        depth = sum(len(pair.sq) for pair in self.layer.pairs)
        depth += self.layer.inflight + self.layer.backlog_depth()
        slots = max(1, self.layer.config.max_inflight)
        per_cmd = self.ewma_cmd_ns if self.ewma_cmd_ns is not None else 0.0
        return depth / slots * per_cmd

    def collectible_invalid_pages(self) -> int:
        """Invalid pages in *closed* blocks — what the collector can reclaim.

        Invalid pages still inside open write points are invisible to the
        greedy victim picker and cost the device nothing until their block
        fills, so the raw invalid count wildly over-states GC pressure on a
        lightly-written device.
        """
        ftl = self.layer.device.ftl
        open_blocks = ftl.allocator.open_blocks()
        return sum(
            1
            for ppa in ftl.invalid_pages
            if (ppa.channel, ppa.chip, ppa.die, ppa.plane, ppa.block)
            not in open_blocks
        )

    def gc_backlog_ns(self) -> float:
        """Committed background relocation work, as time stolen from scans.

        Each collectible invalid page implies roughly one relocation pass
        the collector will run. Only the parts a scan *shares* are priced:
        the two channel crossings (read out, program in) and the array-read
        lane time — programs land on the chips' separate write lanes and
        barely delay fetches. A ranking heuristic: it places "GC has real
        work queued" above "invalid pages parked in open blocks", not the
        exact interference.
        """
        flash = self.layer.device.config.flash
        planes = (
            flash.channels
            * flash.chips_per_channel
            * flash.dies_per_chip
            * flash.planes_per_die
        )
        per_page = (
            2.0 * flash.page_transfer_ns / max(1, flash.channels)
            + flash.read_latency_ns / max(1, planes)
        )
        return self.collectible_invalid_pages() * per_page

    # -- placement estimates ---------------------------------------------------

    def scan_selectivity(self, table, predicate, at_ns: float = 0.0) -> float:
        """Sampled-predicate selectivity: evaluate the pushed predicate on
        an evenly-strided row sample of the actual table.

        The static bound prices a device scan's output by column fraction
        alone, which wildly over-states what a highly selective filter
        ships back up the link — enough to flip the placement the wrong
        way. Sampling the real rows (the session holds the table the
        device would scan) fixes the estimate for the price of a few
        hundred predicate evaluations. Un-evaluable predicates (e.g.
        scalar-subquery references) fall back to the conservative 1.0;
        the estimate is floored at one surviving sample row so a
        zero-match sample never prices the output at exactly nothing.
        """
        nrows = getattr(table, "nrows", 0)
        if predicate is None or nrows <= 0:
            return 1.0
        stride = max(1, nrows // SELECTIVITY_SAMPLE_ROWS)
        sampled = survived = 0
        for i in range(0, nrows, stride):
            sampled += 1
            try:
                if predicate(table.row(i)):
                    survived += 1
            except Exception:
                return 1.0  # no estimate beats a wrong one
        estimate = max(survived, 1) / sampled
        self._g_selectivity.set(estimate)
        return estimate

    def device_scan_ns(
        self, pages: int, kernel: str = "psf", at_ns: float = 0.0
    ) -> float:
        # The observed EWMA is NOT folded into the base rate: it absorbs
        # queueing from whatever ran recently (including a query's own
        # morsel trains), so it prices *queued* work well but would keep
        # the device looking loaded long after it drained. The base stays
        # the calibrated rate; pressure is measured at this instant.
        base = super().device_scan_ns(pages, kernel, at_ns)
        estimate = (
            base
            + self.core_backlog_ns(at_ns)
            + self.queue_pressure_ns()
            + self.gc_backlog_ns()
        )
        self._g_device.set(estimate)
        return estimate

    def host_scan_ns(self, text_bytes: float, at_ns: float = 0.0) -> float:
        estimate = super().host_scan_ns(text_bytes, at_ns)
        self._g_host.set(estimate)
        return estimate
