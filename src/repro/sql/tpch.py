"""The 22 TPC-H queries as SQL text for the repro.sql frontend.

Each transcription is written to produce *byte-identical* results to the
handwritten relalg implementation in :mod:`repro.analytics.queries` —
same columns, same order, same floats. That means mirroring the
handwritten operator shapes exactly: the same join nesting (expressed
through derived tables), the same arithmetic association (relalg evaluates
``a * b / c`` as ``(a * b) / c``, which SQL's left-associative ``*``/``/``
reproduce), and the same scalar fallbacks (``COALESCE(..., 0.0)`` where
the handwritten code uses ``if total else 0``). The differential suite in
``tests/test_sql_differential.py`` holds this file to that standard.

Dates use the generator's simplified 360-day calendar via ``DATE``
literals; ``DATE 'YYYY-MM-DD' + 90`` adds days directly.
"""

from __future__ import annotations

from typing import Dict

_REV = "l_extendedprice * (100 - l_discount) / 100.0"

TPCH_SQL: Dict[int, str] = {}

TPCH_SQL[1] = f"""
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM({_REV}) AS sum_disc_price,
       SUM({_REV} * (100 + l_tax) / 100.0) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

_Q2_PS = """
    SELECT * FROM partsupp
    JOIN (SELECT * FROM part WHERE p_size = 15 AND p_type LIKE '%BRASS')
      ON ps_partkey = p_partkey
    JOIN (SELECT * FROM supplier
          JOIN (SELECT * FROM nation
                JOIN (SELECT * FROM region WHERE r_name = 'EUROPE')
                  ON n_regionkey = r_regionkey)
            ON s_nationkey = n_nationkey)
      ON ps_suppkey = s_suppkey
"""

TPCH_SQL[2] = f"""
SELECT s_acctbal, s_name, n_name, ps_partkey, p_mfgr, s_address, s_phone
FROM ({_Q2_PS})
JOIN (SELECT ps_partkey, MIN(ps_supplycost) AS min_cost
      FROM ({_Q2_PS}) GROUP BY ps_partkey)
  ON ps_partkey = ps_partkey
WHERE ps_supplycost = min_cost
ORDER BY s_acctbal DESC, n_name, s_name
LIMIT 100
"""

TPCH_SQL[3] = f"""
SELECT l_orderkey, o_orderdate, o_shippriority, SUM({_REV}) AS revenue
FROM lineitem
JOIN (SELECT * FROM orders
      SEMI JOIN (SELECT c_custkey FROM customer WHERE c_mktsegment = 'BUILDING')
        ON o_custkey = c_custkey
      WHERE o_orderdate < DATE '1995-03-15')
  ON l_orderkey = o_orderkey
WHERE l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

TPCH_SQL[4] = """
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
SEMI JOIN (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)
  ON o_orderkey = l_orderkey
WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-07-01' + 90
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""

TPCH_SQL[5] = f"""
SELECT n_name, SUM({_REV}) AS revenue
FROM lineitem
JOIN (SELECT * FROM orders
      JOIN (SELECT * FROM customer
            JOIN (SELECT * FROM nation
                  JOIN (SELECT * FROM region WHERE r_name = 'ASIA')
                    ON n_regionkey = r_regionkey)
              ON c_nationkey = n_nationkey)
        ON o_custkey = c_custkey
      WHERE o_orderdate >= DATE '1994-01-01'
        AND o_orderdate < DATE '1994-01-01' + 360)
  ON l_orderkey = o_orderkey
JOIN supplier ON l_suppkey = s_suppkey
WHERE s_nationkey = c_nationkey
GROUP BY n_name
ORDER BY revenue DESC
"""

TPCH_SQL[6] = """
SELECT SUM(l_extendedprice * l_discount / 100.0) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1994-01-01' + 360
  AND l_discount >= 5 AND l_discount <= 7 AND l_quantity < 24
"""

TPCH_SQL[7] = f"""
SELECT supp_nation, cust_nation, 1992 + FLOOR(l_shipdate / 360) AS l_year,
       SUM({_REV}) AS revenue
FROM (
  SELECT *, n_name AS supp_nation FROM lineitem
  JOIN supplier ON l_suppkey = s_suppkey
  JOIN (SELECT n_nationkey, n_name FROM nation) ON s_nationkey = n_nationkey
  WHERE l_shipdate >= DATE '1995-01-01' AND l_shipdate <= DATE '1996-12-30'
)
JOIN (
  SELECT * FROM orders
  JOIN customer ON o_custkey = c_custkey
  JOIN (SELECT n_nationkey AS cn_nationkey, n_name AS cust_nation FROM nation)
    ON c_nationkey = cn_nationkey
)
  ON l_orderkey = o_orderkey
WHERE (supp_nation, cust_nation) IN (('FRANCE', 'GERMANY'), ('GERMANY', 'FRANCE'))
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year
"""

TPCH_SQL[8] = f"""
SELECT o_year, CASE WHEN total = 0 THEN 0.0 ELSE brazil_vol / total END AS mkt_share
FROM (
  SELECT o_year, SUM(volume) AS total, SUM(brazil) AS brazil_vol
  FROM (
    SELECT *, 1992 + FLOOR(o_orderdate / 360) AS o_year,
           {_REV} AS volume,
           CASE WHEN n_name = 'BRAZIL' THEN {_REV} ELSE 0.0 END AS brazil
    FROM lineitem
    SEMI JOIN (SELECT p_partkey FROM part WHERE p_type = 'ECONOMY ANODIZED STEEL')
      ON l_partkey = p_partkey
    JOIN (SELECT o_orderkey, o_orderdate FROM orders
          SEMI JOIN (SELECT c_custkey FROM customer
                     JOIN (SELECT n_nationkey FROM nation
                           JOIN (SELECT r_regionkey FROM region WHERE r_name = 'AMERICA')
                             ON n_regionkey = r_regionkey)
                       ON c_nationkey = n_nationkey)
            ON o_custkey = c_custkey
          WHERE o_orderdate >= DATE '1995-01-01' AND o_orderdate <= DATE '1996-12-30')
      ON l_orderkey = o_orderkey
    JOIN (SELECT s_suppkey, s_nationkey FROM supplier) ON l_suppkey = s_suppkey
    JOIN (SELECT n_nationkey, n_name FROM nation) ON s_nationkey = n_nationkey
  )
  GROUP BY o_year
)
ORDER BY o_year
"""

TPCH_SQL[9] = f"""
SELECT n_name, o_year, SUM(amount) AS sum_profit
FROM (
  SELECT *, 1992 + FLOOR(o_orderdate / 360) AS o_year,
         {_REV} - ps_supplycost * l_quantity / 100.0 AS amount
  FROM (
    SELECT *, (l_partkey, l_suppkey) AS ps_key FROM lineitem
    SEMI JOIN (SELECT p_partkey FROM part WHERE p_name LIKE '%green%')
      ON l_partkey = p_partkey
    JOIN (SELECT s_suppkey, s_nationkey FROM supplier) ON l_suppkey = s_suppkey
    JOIN (SELECT n_nationkey, n_name FROM nation) ON s_nationkey = n_nationkey
  )
  JOIN (SELECT ps_key, ps_supplycost
        FROM (SELECT *, (ps_partkey, ps_suppkey) AS ps_key FROM partsupp))
    ON ps_key = ps_key
  JOIN (SELECT o_orderkey, o_orderdate FROM orders) ON l_orderkey = o_orderkey
)
GROUP BY n_name, o_year
ORDER BY n_name, o_year DESC
"""

TPCH_SQL[10] = f"""
SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment,
       SUM({_REV}) AS revenue
FROM lineitem
JOIN (SELECT o_orderkey, o_custkey FROM orders
      WHERE o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1993-10-01' + 90)
  ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
JOIN (SELECT n_nationkey, n_name FROM nation) ON c_nationkey = n_nationkey
WHERE l_returnflag = 'R'
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20
"""

_Q11_PS = """
    SELECT * FROM partsupp
    SEMI JOIN (SELECT s_suppkey FROM supplier
               SEMI JOIN (SELECT n_nationkey FROM nation WHERE n_name = 'GERMANY')
                 ON s_nationkey = n_nationkey)
      ON ps_suppkey = s_suppkey
"""

TPCH_SQL[11] = f"""
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM ({_Q11_PS})
GROUP BY ps_partkey
HAVING value > COALESCE((SELECT SUM(ps_supplycost * ps_availqty) AS total
                         FROM ({_Q11_PS})), 0.0) * 0.0001
ORDER BY value DESC
"""

TPCH_SQL[12] = """
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END)
         AS high_line_count,
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 0 ELSE 1 END)
         AS low_line_count
FROM lineitem
JOIN (SELECT o_orderkey, o_orderpriority FROM orders) ON l_orderkey = o_orderkey
WHERE l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1994-01-01' + 360
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

_Q13_COUNTS = """
    SELECT o_custkey, COUNT(*) AS c_count FROM orders
    WHERE o_comment NOT LIKE '%special%'
    GROUP BY o_custkey
"""

TPCH_SQL[13] = f"""
SELECT c_count, COUNT(*) AS custdist
FROM (
  SELECT c_count FROM (SELECT c_custkey FROM customer)
  JOIN ({_Q13_COUNTS}) ON c_custkey = o_custkey
  UNION ALL
  SELECT 0 AS c_count FROM (SELECT c_custkey FROM customer)
  ANTI JOIN ({_Q13_COUNTS}) ON c_custkey = o_custkey
)
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
"""

TPCH_SQL[14] = f"""
SELECT CASE WHEN total = 0 THEN 0.0 ELSE 100.0 * promo / total END AS promo_revenue
FROM (
  SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' THEN {_REV} ELSE 0.0 END) AS promo,
         SUM({_REV}) AS total
  FROM lineitem
  JOIN (SELECT p_partkey, p_type FROM part) ON l_partkey = p_partkey
  WHERE l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-09-01' + 30
)
"""

_Q15_REVENUE = f"""
    SELECT l_suppkey, SUM({_REV}) AS total_revenue FROM lineitem
    WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-01-01' + 90
    GROUP BY l_suppkey
"""

TPCH_SQL[15] = f"""
SELECT l_suppkey, total_revenue, s_suppkey, s_name, s_address, s_phone
FROM ({_Q15_REVENUE}
      HAVING total_revenue = COALESCE((SELECT MAX(total_revenue) AS top
                                       FROM ({_Q15_REVENUE})), 0.0))
JOIN (SELECT s_suppkey, s_name, s_address, s_phone FROM supplier)
  ON l_suppkey = s_suppkey
ORDER BY l_suppkey
"""

TPCH_SQL[16] = """
SELECT p_brand, p_type, p_size, COUNT(*) AS supplier_cnt
FROM (
  SELECT DISTINCT p_brand, p_type, p_size, ps_suppkey
  FROM partsupp
  JOIN (SELECT * FROM part
        WHERE p_brand <> 'Brand#45' AND p_type NOT LIKE 'MEDIUM POLISHED%'
          AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9))
    ON ps_partkey = p_partkey
  ANTI JOIN (SELECT s_suppkey FROM supplier
             WHERE s_comment LIKE '%Customer Complaints%')
    ON ps_suppkey = s_suppkey
)
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
"""

_Q17_LI = """
    SELECT * FROM lineitem
    JOIN (SELECT p_partkey FROM part
          WHERE p_brand = 'Brand#23' AND p_container = 'MED BOX')
      ON l_partkey = p_partkey
"""

TPCH_SQL[17] = f"""
SELECT SUM(l_extendedprice / 7.0) AS avg_yearly
FROM ({_Q17_LI})
JOIN (SELECT p_partkey, AVG(l_quantity) AS avg_q FROM ({_Q17_LI}) GROUP BY p_partkey)
  ON p_partkey = p_partkey
WHERE l_quantity < 0.2 * avg_q
"""

TPCH_SQL[18] = """
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum_qty
FROM orders
JOIN (SELECT l_orderkey, SUM(l_quantity) AS sum_qty FROM lineitem
      GROUP BY l_orderkey HAVING sum_qty > 300)
  ON o_orderkey = l_orderkey
JOIN (SELECT c_custkey, c_name FROM customer) ON o_custkey = c_custkey
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
"""

TPCH_SQL[19] = f"""
SELECT SUM({_REV}) AS revenue
FROM lineitem
JOIN (SELECT p_partkey, p_brand, p_container, p_size FROM part)
  ON l_partkey = p_partkey
WHERE l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON'
  AND (p_brand = 'Brand#12' AND p_container LIKE 'SM%'
         AND l_quantity >= 1 AND l_quantity <= 11 AND p_size >= 1 AND p_size <= 5
       OR p_brand = 'Brand#23' AND p_container LIKE 'MED%'
         AND l_quantity >= 10 AND l_quantity <= 20 AND p_size >= 1 AND p_size <= 10
       OR p_brand = 'Brand#34' AND p_container LIKE 'LG%'
         AND l_quantity >= 20 AND l_quantity <= 30 AND p_size >= 1 AND p_size <= 15)
"""

TPCH_SQL[20] = """
SELECT s_name, s_address
FROM supplier
SEMI JOIN (SELECT n_nationkey FROM nation WHERE n_name = 'CANADA')
  ON s_nationkey = n_nationkey
SEMI JOIN (
  SELECT ps_suppkey FROM (
    SELECT * FROM (SELECT *, (ps_partkey, ps_suppkey) AS ps_key FROM partsupp
                   SEMI JOIN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%')
                     ON ps_partkey = p_partkey)
    JOIN (SELECT ps_key, SUM(l_quantity) AS qty
          FROM (SELECT *, (l_partkey, l_suppkey) AS ps_key FROM lineitem
                WHERE l_shipdate >= DATE '1994-01-01'
                  AND l_shipdate < DATE '1994-01-01' + 360)
          GROUP BY ps_key)
      ON ps_key = ps_key
    WHERE ps_availqty > 0.5 * qty
  )
)
  ON s_suppkey = ps_suppkey
ORDER BY s_name
"""

TPCH_SQL[21] = """
SELECT s_name, COUNT(*) AS numwait
FROM (SELECT l_orderkey, l_suppkey, l_commitdate, l_receiptdate FROM lineitem
      WHERE l_receiptdate > l_commitdate)
JOIN (SELECT s_suppkey, s_name FROM supplier
      SEMI JOIN (SELECT n_nationkey FROM nation WHERE n_name = 'SAUDI ARABIA')
        ON s_nationkey = n_nationkey)
  ON l_suppkey = s_suppkey
SEMI JOIN (SELECT o_orderkey FROM orders WHERE o_orderstatus = 'F')
  ON l_orderkey = o_orderkey
JOIN (SELECT l_orderkey, COUNT(*) AS n_supp
      FROM (SELECT DISTINCT l_orderkey, l_suppkey FROM lineitem)
      GROUP BY l_orderkey)
  ON l_orderkey = l_orderkey
JOIN (SELECT l_orderkey, COUNT(*) AS n_late
      FROM (SELECT DISTINCT l_orderkey, l_suppkey FROM lineitem
            WHERE l_receiptdate > l_commitdate)
      GROUP BY l_orderkey)
  ON l_orderkey = l_orderkey
WHERE n_supp > 1 AND n_late = 1
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100
"""

_Q22_CODES = "('13', '31', '23', '29', '30', '18', '17')"

TPCH_SQL[22] = f"""
SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
FROM (
  SELECT *, SUBSTRING(c_phone, 1, 2) AS cntrycode FROM customer
  WHERE SUBSTRING(c_phone, 1, 2) IN {_Q22_CODES}
    AND c_acctbal > COALESCE((SELECT AVG(c_acctbal) AS a FROM customer
                              WHERE SUBSTRING(c_phone, 1, 2) IN {_Q22_CODES}
                                AND c_acctbal > 0), 0.0)
)
ANTI JOIN (SELECT o_custkey FROM orders) ON c_custkey = o_custkey
GROUP BY cntrycode
ORDER BY cntrycode
"""


def tpch_sql(number: int) -> str:
    """The SQL text of TPC-H query ``number`` (1..22)."""
    from repro.errors import SqlError

    try:
        return TPCH_SQL[number].strip()
    except KeyError:
        raise SqlError(f"query {number} out of range 1..22") from None
