"""Plan executor: runs a :class:`PlannedStatement` against an in-memory
TPC-H database and records, per base-table scan, where it ran.

The executor is deliberately *functional*: it computes the exact result
rows using relalg whatever site each scan is assigned, and emits one
:class:`ScanExecution` trace per scan. The simulation layer
(:mod:`repro.sql.session`) turns those traces into device commands and
host-CPU time; the rows themselves never depend on the site, which is
what the differential suite pins down.

Site semantics:

* **host** — the scan returns the shared database table itself; pushed
  predicates are applied as one combined filter (the host parses the raw
  text stream, so the table keeps its full width mid-pipeline — harmless,
  since operators never mutate sources and the final project normalises).
* **device** — the scan builds a fresh table holding only the planned
  columns with pushed predicates already applied, modelling the PSF
  kernel emitting filtered, projected binary tuples. Its stats start at
  zero: the host CPU never touched those rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analytics.relalg import Table
from repro.errors import SqlError
from repro.sql.ast_nodes import Column
from repro.sql.exprs import compile_expr
from repro.sql.planner import (
    DistinctNode,
    ExtendNode,
    FilterNode,
    GroupNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PlannedStatement,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
    and_fold,
)

SITES = ("host", "device")


@dataclass
class ScanExecution:
    """One base-table scan as it actually ran."""

    table: str
    site: str  # 'host' | 'device'
    kernel: str  # device kernel this scan maps to: 'psf' (filtered) | 'parse'
    rows_in: int
    rows_out: int
    columns: Tuple[str, ...]
    pushdown: bool  # True when predicates were evaluated at scan time

    @property
    def selectivity(self) -> float:
        return self.rows_out / self.rows_in if self.rows_in else 1.0


@dataclass
class SqlResult:
    """Result table plus the per-scan site trace."""

    table: Table
    scans: List[ScanExecution] = field(default_factory=list)

    @property
    def nrows(self) -> int:
        return self.table.nrows


#: Decides where one scan runs; returns 'host' or 'device'.
SiteChooser = Callable[[ScanNode], str]


class SqlExecutor:
    def __init__(
        self, db: Dict[str, Table], chooser: Optional[SiteChooser] = None
    ) -> None:
        self.db = db
        self.chooser = chooser

    def execute(self, planned: PlannedStatement) -> SqlResult:
        scalars: Dict[int, object] = {}
        scans: List[ScanExecution] = []
        for key, sub_root in planned.scalars:
            scalars[key] = self._resolve_scalar(sub_root, scalars, scans)
        table = self._exec(planned.root, scalars, scans)
        return SqlResult(table=table, scans=scans)

    def _resolve_scalar(self, root, scalars, scans):
        table = self._exec(root, scalars, scans)
        if len(table.columns) != 1:
            raise SqlError(
                f"scalar subquery produced {len(table.columns)} columns"
            )
        values = next(iter(table.columns.values()))
        if len(values) > 1:
            raise SqlError(f"scalar subquery produced {len(values)} rows")
        return values[0] if values else None  # empty → SQL NULL

    # -- node dispatch ---------------------------------------------------------

    def _exec(self, node: PlanNode, scalars, scans) -> Table:
        if isinstance(node, ScanNode):
            return self._exec_scan(node, scalars, scans)
        if isinstance(node, JoinNode):
            left = self._exec(node.left, scalars, scans)
            right = self._exec(node.right, scalars, scans)
            return left.join(right, node.left_key, node.right_key, how=node.how)
        if isinstance(node, FilterNode):
            child = self._exec(node.child, scalars, scans)
            return child.filter(compile_expr(node.predicate, scalars))
        if isinstance(node, ExtendNode):
            child = self._exec(node.child, scalars, scans)
            return child.extend(node.name, compile_expr(node.expr, scalars))
        if isinstance(node, GroupNode):
            child = self._exec(node.child, scalars, scans)
            aggs = {
                name: (op, compile_expr(arg, scalars) if arg is not None else None)
                for name, op, arg in node.aggregates
            }
            return child.group_by(node.keys, aggs)
        if isinstance(node, ProjectNode):
            child = self._exec(node.child, scalars, scans)
            for name, expr in node.items:
                if isinstance(expr, Column) and expr.name == name:
                    continue
                child = child.extend(name, compile_expr(expr, scalars))
            return child.project([name for name, _ in node.items])
        if isinstance(node, DistinctNode):
            child = self._exec(node.child, scalars, scans)
            return child.distinct(node.columns)
        if isinstance(node, SortNode):
            child = self._exec(node.child, scalars, scans)
            return child.order_by(node.keys)
        if isinstance(node, LimitNode):
            child = self._exec(node.child, scalars, scans)
            return child.limit(node.n)
        if isinstance(node, UnionNode):
            return self._exec_union(node, scalars, scans)
        raise SqlError(f"cannot execute plan node {node!r}")

    def _exec_scan(self, node: ScanNode, scalars, scans) -> Table:
        try:
            base = self.db[node.table]
        except KeyError:
            raise SqlError(
                f"table {node.table!r} not loaded; have {tuple(self.db)}"
            ) from None
        site = self.chooser(node) if self.chooser is not None else "host"
        if site not in SITES:
            raise SqlError(f"scan chooser returned {site!r}; want one of {SITES}")
        kernel = "psf" if node.predicates else "parse"
        if site == "host":
            if node.predicates:
                predicate = compile_expr(and_fold(node.predicates), scalars)
                out = base.filter(predicate)
            else:
                out = base
        else:
            # The device streams raw pages through parse (+ filter when
            # predicates pushed) and emits only the planned columns.
            cols: Dict[str, list] = {c: [] for c in node.columns}
            if node.predicates:
                predicate = compile_expr(and_fold(node.predicates), scalars)
                for row in base.iter_rows():
                    if predicate(row):
                        for c in node.columns:
                            cols[c].append(row[c])
            else:
                for c in node.columns:
                    cols[c] = list(base.column(c))
            out = Table(f"{node.table}@dev", cols)
        scans.append(
            ScanExecution(
                table=node.table,
                site=site,
                kernel=kernel,
                rows_in=base.nrows,
                rows_out=out.nrows,
                columns=node.columns,
                pushdown=bool(node.predicates),
            )
        )
        return out

    def _exec_union(self, node: UnionNode, scalars, scans) -> Table:
        tables = [self._exec(child, scalars, scans) for child in node.children]
        first = tables[0]
        names = list(first.columns)
        cols: Dict[str, list] = {n: list(first.columns[n]) for n in names}
        for other in tables[1:]:
            if set(other.columns) != set(names):
                raise SqlError(
                    f"UNION ALL column mismatch: {names} vs {tuple(other.columns)}"
                )
            for n in names:
                cols[n].extend(other.columns[n])
        out = Table("union", cols)
        for table in tables:
            out.stats.merge(table.stats)
        return out
