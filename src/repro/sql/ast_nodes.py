"""SQL abstract syntax tree.

Plain dataclasses, one per syntactic form. Expression nodes are shared by
the parser, the planner (column analysis, conjunct splitting), and the
expression compiler (:mod:`repro.sql.exprs`), so they carry no behaviour —
just structure. Identity (``id(node)``) is used by the planner to key
scalar-subquery plans, so nodes are deliberately *not* frozen/interned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# -- expressions ---------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""


@dataclass
class Column(Expr):
    name: str


@dataclass
class Literal(Expr):
    value: object  # int | float | str | None


@dataclass
class BinaryOp(Expr):
    op: str  # '+', '-', '*', '/', '=', '<>', '<', '<=', '>', '>=', 'and', 'or'
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str  # '-', 'not'
    operand: Expr


@dataclass
class FuncCall(Expr):
    """Scalar or aggregate function call. ``COUNT(*)`` is args=[Star()]."""

    name: str  # lower-case: sum/min/max/avg/count/coalesce/floor/substring
    args: List[Expr]


@dataclass
class Star(Expr):
    """``*`` — only valid inside COUNT(*) or as a lone select item."""


@dataclass
class TupleExpr(Expr):
    items: List[Expr]


@dataclass
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` over literal (or tuple-literal) values."""

    operand: Expr
    values: List[Expr]
    negated: bool = False


@dataclass
class Like(Expr):
    """``expr LIKE 'pattern'`` with ``%`` wildcards only at the ends."""

    operand: Expr
    pattern: str


@dataclass
class CaseExpr(Expr):
    whens: List[Tuple[Expr, Expr]]  # (condition, result) pairs
    default: Optional[Expr] = None  # ELSE branch; None → SQL NULL


@dataclass
class ScalarSubquery(Expr):
    """``(SELECT ...)`` used as a value; must yield one row, one column.

    Uncorrelated only: the subquery is planned independently and resolved
    once per execution. An empty result is SQL NULL (``None``), which is
    why the TPC-H transcriptions wrap these in COALESCE.
    """

    query: "Select"


# -- query structure -----------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A base table or parenthesised derived table in FROM/JOIN."""

    name: Optional[str] = None  # base table name, or
    subquery: Optional["Select"] = None  # derived table (SELECT ...)


@dataclass
class Join:
    kind: str  # 'inner' | 'semi' | 'anti'
    source: TableRef
    left_key: str  # ON <left_key> = <right_key>; column names only
    right_key: str


@dataclass
class OrderItem:
    column: str
    descending: bool = False


@dataclass
class Select:
    items: List[SelectItem]
    source: TableRef
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[str] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


@dataclass
class UnionAll:
    """``SELECT ... UNION ALL SELECT ...`` — column-wise concatenation."""

    parts: List[Select]


Statement = object  # Select | UnionAll
