"""SQL planner: AST → relalg operator plan with scan-predicate pushdown.

The planner lowers a parsed statement onto the operators
:mod:`repro.analytics.relalg` provides, in a fixed pipeline per SELECT::

    scans → joins (left-deep, in FROM order) → residual filter →
    extends (computed group keys) → group/aggregate → having →
    extends + project (select list) → distinct → sort → limit

WHERE is split into conjuncts at the top-level ANDs. A conjunct whose
columns all come from **one** pushable base-table scan — the FROM table,
or an inner join's right side; semi/anti right sides and derived tables
are opaque — is pushed into that :class:`ScanNode`, where the executor
either evaluates it at scan time (device site, modelling the on-device
PSF kernel) or as one combined filter (host site). Everything else lands
in a single residual :class:`FilterNode` after the joins. Because relalg
joins are left-driven and order-preserving and filters are stable, the
split never changes row order, so results are byte-identical whichever
site each scan runs on.

Scalar subqueries are planned inner-first into ``PlannedStatement.scalars``;
the executor resolves them in that order before evaluating any closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analytics.schema import SCHEMA
from repro.errors import SqlError
from repro.sql.ast_nodes import (
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnionAll,
)
from repro.sql.exprs import column_refs, contains_aggregate, scalar_subqueries
from repro.sql.parser import AGGREGATE_FUNCS


# -- plan nodes ----------------------------------------------------------------


class PlanNode:
    """Base class for plan operators."""


@dataclass(eq=False)
class ScanNode(PlanNode):
    """Scan one base table, producing ``columns``; ``predicates`` are the
    pushed conjuncts (ANDed). The executor picks the site per scan."""

    table: str
    columns: Tuple[str, ...]
    predicates: List[Expr] = field(default_factory=list)


@dataclass(eq=False)
class JoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    left_key: str
    right_key: str
    how: str  # 'inner' | 'semi' | 'anti'


@dataclass(eq=False)
class FilterNode(PlanNode):
    child: PlanNode
    predicate: Expr


@dataclass(eq=False)
class ExtendNode(PlanNode):
    child: PlanNode
    name: str
    expr: Expr


@dataclass(eq=False)
class GroupNode(PlanNode):
    child: PlanNode
    keys: List[str]
    #: (output name, op in sum/min/max/avg/count, argument expr or None)
    aggregates: List[Tuple[str, str, Optional[Expr]]]


@dataclass(eq=False)
class ProjectNode(PlanNode):
    """Normalise to the select list: ``items`` is (output name, expr) in
    select order; non-identity items extend first, then project."""

    child: PlanNode
    items: List[Tuple[str, Expr]]


@dataclass(eq=False)
class DistinctNode(PlanNode):
    child: PlanNode
    columns: Tuple[str, ...]


@dataclass(eq=False)
class SortNode(PlanNode):
    child: PlanNode
    keys: List[Tuple[str, bool]]  # (column, descending)


@dataclass(eq=False)
class LimitNode(PlanNode):
    child: PlanNode
    n: int


@dataclass(eq=False)
class UnionNode(PlanNode):
    children: List[PlanNode]


@dataclass
class PlannedStatement:
    """A lowered statement plus its scalar-subquery subplans (inner-first)."""

    root: PlanNode
    #: (id(ScalarSubquery AST node), subplan root) in resolution order.
    scalars: List[Tuple[int, PlanNode]]
    output_columns: Tuple[str, ...]


# -- helpers -------------------------------------------------------------------


def flatten_and(expr: Optional[Expr]) -> List[Expr]:
    """Split an expression on its top-level ANDs."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return flatten_and(expr.left) + flatten_and(expr.right)
    return [expr]


def and_fold(conjuncts: Sequence[Expr]) -> Expr:
    return reduce(lambda a, b: BinaryOp("and", a, b), conjuncts)


def scan_nodes(node: PlanNode) -> List[ScanNode]:
    """All base-table scans under ``node``, left-to-right."""
    if isinstance(node, ScanNode):
        return [node]
    if isinstance(node, JoinNode):
        return scan_nodes(node.left) + scan_nodes(node.right)
    if isinstance(node, UnionNode):
        return [s for child in node.children for s in scan_nodes(child)]
    child = getattr(node, "child", None)
    return scan_nodes(child) if child is not None else []


# -- the planner ---------------------------------------------------------------


class Planner:
    def __init__(self) -> None:
        self.scalars: List[Tuple[int, PlanNode]] = []

    def plan(self, stmt) -> PlannedStatement:
        root, out_cols = self._plan_stmt(stmt)
        return PlannedStatement(
            root=root, scalars=self.scalars, output_columns=tuple(out_cols)
        )

    def _plan_stmt(self, stmt) -> Tuple[PlanNode, List[str]]:
        if isinstance(stmt, UnionAll):
            parts = [self._plan_select(p) for p in stmt.parts]
            first_cols = parts[0][1]
            for node, cols in parts[1:]:
                if set(cols) != set(first_cols):
                    raise SqlError(
                        f"UNION ALL column mismatch: {first_cols} vs {cols}"
                    )
            return UnionNode([p[0] for p in parts]), first_cols
        if isinstance(stmt, Select):
            return self._plan_select(stmt)
        raise SqlError(f"cannot plan {stmt!r}")

    def _plan_select(self, sel: Select) -> Tuple[PlanNode, List[str]]:
        has_star = any(isinstance(item.expr, Star) for item in sel.items)

        # Every column the statement touches, for scan pruning.
        refs = set(sel.group_by)
        refs.update(o.column for o in sel.order_by)
        for join in sel.joins:
            refs.add(join.left_key)
            refs.add(join.right_key)
        scoped_exprs: List[Expr] = [
            item.expr for item in sel.items if not isinstance(item.expr, Star)
        ]
        if sel.where is not None:
            scoped_exprs.append(sel.where)
        if sel.having is not None:
            scoped_exprs.append(sel.having)
        for expr in scoped_exprs:
            refs.update(column_refs(expr))

        # FROM + JOIN sources, left-deep.
        node, scope = self._plan_source(sel.source, refs, has_star)
        pushable: Dict[str, ScanNode] = {}
        seen_tables: Dict[str, int] = {}

        def admit(scan_node: PlanNode) -> None:
            if not isinstance(scan_node, ScanNode):
                return
            seen_tables[scan_node.table] = seen_tables.get(scan_node.table, 0) + 1
            if seen_tables[scan_node.table] > 1:
                # ambiguous self-join: nothing from this table is pushable
                for col in SCHEMA[scan_node.table].columns:
                    pushable.pop(col, None)
                return
            for col in SCHEMA[scan_node.table].columns:
                pushable[col] = scan_node

        admit(node)
        for join in sel.joins:
            right, right_cols = self._plan_source(join.source, refs, has_star)
            if join.kind == "inner":
                admit(right)
                scope = scope + [c for c in right_cols if c not in scope]
            node = JoinNode(node, right, join.left_key, join.right_key, join.kind)

        # WHERE: push single-scan conjuncts, AND the rest into one residual.
        residual: List[Expr] = []
        for conjunct in flatten_and(sel.where):
            cols = column_refs(conjunct)
            owners = {pushable[c] for c in cols if c in pushable}
            if cols and len(owners) == 1 and all(c in pushable for c in cols):
                owners.pop().predicates.append(conjunct)
            else:
                residual.append(conjunct)
        if residual:
            node = FilterNode(node, and_fold(residual))

        # Register scalar subqueries (inner-first via recursion).
        for expr in scoped_exprs:
            for scalar in scalar_subqueries(expr):
                sub_root, sub_cols = self._plan_stmt(scalar.query)
                if len(sub_cols) != 1:
                    raise SqlError(
                        f"scalar subquery must produce one column, got {sub_cols}"
                    )
                self.scalars.append((id(scalar), sub_root))

        grouped = bool(sel.group_by) or any(
            contains_aggregate(item.expr) for item in sel.items
        )
        if sel.having is not None and not grouped:
            raise SqlError("HAVING without GROUP BY or aggregates")

        if grouped:
            node, out_names = self._plan_grouped(sel, node, has_star)
        else:
            out_items: List[Tuple[str, Expr]] = []
            for item in sel.items:
                if isinstance(item.expr, Star):
                    out_items.extend((c, Column(c)) for c in scope)
                else:
                    out_items.append((self._item_name(item), item.expr))
            node = ProjectNode(node, out_items)
            out_names = [name for name, _ in out_items]
        if len(set(out_names)) != len(out_names):
            raise SqlError(f"duplicate output columns: {out_names}")

        if sel.distinct:
            node = DistinctNode(node, tuple(out_names))
        if sel.order_by:
            node = SortNode(node, [(o.column, o.descending) for o in sel.order_by])
        if sel.limit is not None:
            node = LimitNode(node, sel.limit)
        return node, out_names

    def _plan_grouped(
        self, sel: Select, node: PlanNode, has_star: bool
    ) -> Tuple[PlanNode, List[str]]:
        if has_star:
            raise SqlError("'*' select item is not valid in a grouped query")
        aggregates: List[Tuple[str, str, Optional[Expr]]] = []
        key_items: Dict[str, Expr] = {}
        out_names: List[str] = []
        for item in sel.items:
            if contains_aggregate(item.expr):
                expr = item.expr
                if not (isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCS):
                    raise SqlError(
                        "an aggregate must be the whole select item "
                        "(wrap arithmetic inside the aggregate or use a derived table)"
                    )
                if item.alias is None:
                    raise SqlError(f"aggregate {expr.name.upper()} needs an AS alias")
                arg = None if expr.name == "count" else expr.args[0]
                aggregates.append((item.alias, expr.name, arg))
                out_names.append(item.alias)
            else:
                name = self._item_name(item)
                if name not in sel.group_by:
                    raise SqlError(
                        f"non-aggregate select item {name!r} must appear in GROUP BY"
                    )
                key_items[name] = item.expr
                out_names.append(name)
        for key in sel.group_by:
            expr = key_items.get(key)
            if expr is None:
                continue  # bare existing column used only for grouping
            if isinstance(expr, Column) and expr.name == key:
                continue  # identity: the column already exists under this name
            node = ExtendNode(node, key, expr)
        node = GroupNode(node, keys=list(sel.group_by), aggregates=aggregates)
        if sel.having is not None:
            node = FilterNode(node, sel.having)
        node = ProjectNode(node, [(name, Column(name)) for name in out_names])
        return node, out_names

    def _plan_source(
        self, ref: TableRef, refs, has_star: bool
    ) -> Tuple[PlanNode, List[str]]:
        if ref.subquery is not None:
            return self._plan_stmt(ref.subquery)
        if ref.name not in SCHEMA:
            raise SqlError(
                f"unknown table {ref.name!r}; known: {tuple(SCHEMA)}"
            )
        schema = SCHEMA[ref.name]
        if has_star:
            cols = list(schema.columns)
        else:
            cols = [c for c in schema.columns if c in refs]
            if not cols:  # e.g. SELECT COUNT(*): keep one column to carry rows
                cols = [schema.columns[0]]
        return ScanNode(ref.name, tuple(cols)), cols

    @staticmethod
    def _item_name(item: SelectItem) -> str:
        if item.alias is not None:
            return item.alias
        if isinstance(item.expr, Column):
            return item.expr.name
        raise SqlError("computed select item needs an AS alias")


def plan_statement(stmt) -> PlannedStatement:
    """Lower a parsed statement to a relalg plan."""
    return Planner().plan(stmt)
