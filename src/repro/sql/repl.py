"""Interactive SQL shell over a live :class:`~repro.sql.session.SqlSession`.

``python -m repro sql`` lands here. Statements run end-to-end on the
simulated device: each query is parsed, each base-table scan is placed
host-vs-device by the session's policy, the I/O arbitrates against any
background tenants on the shared event kernel, and the shell reports the
result rows next to the *simulated* latency and the placement decisions.

Besides SQL, the shell understands a few backslash commands
(:data:`HELP_TEXT`), and :meth:`SqlRepl.run_batch` drives the same loop
non-interactively for ``-e``/``-f`` and the CI smoke job.
"""

from __future__ import annotations

import sys
from typing import IO, List, Optional

from repro.analytics.relalg import Table
from repro.analytics.schema import SCHEMA, TABLE_NAMES
from repro.errors import ReproError
from repro.sql.parser import split_statements
from repro.sql.session import QueryRecord, SqlSession

#: Rows printed per result before the display truncates (results are
#: computed in full regardless; only the rendering is bounded).
DISPLAY_ROWS = 40

HELP_TEXT = """\
\\help            show this help
\\tables          list TPC-H tables and their simulated extents
\\schema <table>  show one table's columns
\\policy          show the session's placement policy
\\tpch <n>        run TPC-H query n (1..22)
\\q               quit
any other input is executed as SQL (';' separates statements)\
"""


def render_table(table: Table, limit: int = DISPLAY_ROWS) -> str:
    """ASCII-box rendering of a result table, truncated at ``limit`` rows."""
    headers = list(table.columns)
    rows = []
    for i, row in enumerate(table.iter_rows()):
        if i >= limit:
            break
        rows.append([_cell(row[name]) for name in headers])
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = [rule]
    lines.append(
        "|" + "|".join(f" {h:<{w}} " for h, w in zip(headers, widths)) + "|"
    )
    lines.append(rule)
    for row in rows:
        lines.append(
            "|" + "|".join(f" {c:>{w}} " for c, w in zip(row, widths)) + "|"
        )
    lines.append(rule)
    if table.nrows > limit:
        lines.append(f"... {table.nrows - limit} more rows")
    lines.append(f"({table.nrows} row{'s' if table.nrows != 1 else ''})")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class SqlRepl:
    """Line-oriented shell: reads statements, drives the session, prints."""

    def __init__(
        self,
        session: SqlSession,
        out: Optional[IO[str]] = None,
        show_timing: bool = True,
    ) -> None:
        self.session = session
        self.out = out if out is not None else sys.stdout
        self.show_timing = show_timing

    # -- execution -------------------------------------------------------------

    def execute(self, sql: str) -> QueryRecord:
        """Run one statement to completion on the simulated device."""
        return self.session.drain(self.session.submit(sql))

    def run_statement(self, sql: str) -> bool:
        """Execute one statement or backslash command; False means quit."""
        stripped = sql.strip()
        if not stripped:
            return True
        if stripped.startswith("\\"):
            return self._command(stripped)
        try:
            record = self.execute(stripped)
        except ReproError as exc:
            self._print(f"error: {exc}")
            return True
        assert record.result is not None
        self._print(render_table(record.result.table))
        if self.show_timing:
            placements = ", ".join(
                f"{p.table}->{p.site}" for p in record.placements
            )
            self._print(
                f"time: {record.latency_ns / 1e6:.3f} ms simulated"
                f"  [policy={record.policy}; {placements}]"
            )
        return True

    def run_batch(self, text: str) -> int:
        """Run a whole script; returns a process exit code.

        Lines starting with a backslash are commands; everything else is
        SQL, split on ';' like the interactive loop.
        """
        buf: List[str] = []

        def flush() -> bool:
            pending, buf[:] = "\n".join(buf), []
            return all(self.run_statement(s) for s in split_statements(pending))

        for line in text.splitlines():
            if line.lstrip().startswith("\\"):
                if not flush() or not self.run_statement(line.strip()):
                    return 0
            else:
                buf.append(line)
        flush()
        return 0

    def run_interactive(
        self, stdin: Optional[IO[str]] = None, prompt: str = "sql> "
    ) -> int:
        """Prompted loop: statements end at ';', backslash commands at EOL."""
        stdin = stdin if stdin is not None else sys.stdin
        interactive = stdin.isatty() if hasattr(stdin, "isatty") else False
        buf: List[str] = []
        while True:
            if interactive:
                self.out.write(prompt if not buf else "...> ")
                self.out.flush()
            line = stdin.readline()
            if not line:
                break
            stripped = line.strip()
            if not buf and stripped.startswith("\\"):
                if not self.run_statement(stripped):
                    return 0
                continue
            buf.append(line)
            if ";" in line:
                text = "".join(buf)
                buf = []
                for sql in split_statements(text):
                    if not self.run_statement(sql):
                        return 0
        if buf:
            self.run_batch("".join(buf))
        return 0

    # -- backslash commands ----------------------------------------------------

    def _command(self, text: str) -> bool:
        parts = text.split()
        name, args = parts[0], parts[1:]
        if name in ("\\q", "\\quit"):
            return False
        if name == "\\help":
            self._print(HELP_TEXT)
        elif name == "\\tables":
            for table in TABLE_NAMES:
                extent = self.session.extents[table]
                self._print(
                    f"{table:<10} {extent.pages:6d} pages  "
                    f"lpa [{extent.base_lpa}, {extent.base_lpa + extent.pages})"
                )
        elif name == "\\schema":
            if not args or args[0] not in SCHEMA:
                self._print(f"usage: \\schema {{{', '.join(TABLE_NAMES)}}}")
            else:
                self._print(f"{args[0]}({', '.join(SCHEMA[args[0]].columns)})")
        elif name == "\\policy":
            self._print(f"placement policy: {self.session.policy}")
        elif name == "\\tpch":
            from repro.sql.tpch import TPCH_SQL

            try:
                number = int(args[0])
                sql = TPCH_SQL[number]
            except (IndexError, ValueError, KeyError):
                self._print("usage: \\tpch <1..22>")
            else:
                return self.run_statement(sql)
        else:
            self._print(f"unknown command {name}; try \\help")
        return True

    def _print(self, text: str) -> None:
        self.out.write(text + "\n")
