"""Expression analysis and compilation to row closures.

The planner needs three static analyses (which columns an expression
touches, whether it contains an aggregate, which scalar subqueries it
embeds) and one code generator: :func:`compile_expr` turns an AST
expression into a ``row -> value`` closure over relalg's dict-per-row
representation. Scalar subqueries compile to lookups in a mutable
``scalars`` dict keyed by AST node identity — the executor resolves every
subquery into that dict before the closures run.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Set

from repro.errors import SqlError
from repro.sql.ast_nodes import (
    BinaryOp,
    CaseExpr,
    Column,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    ScalarSubquery,
    Star,
    TupleExpr,
    UnaryOp,
)
from repro.sql.parser import AGGREGATE_FUNCS


def column_refs(expr: Expr) -> Set[str]:
    """Column names ``expr`` reads, excluding scalar-subquery interiors."""
    out: Set[str] = set()
    for node in walk(expr):
        if isinstance(node, Column):
            out.add(node.name)
    return out


def contains_aggregate(expr: Expr) -> bool:
    return any(
        isinstance(node, FuncCall) and node.name in AGGREGATE_FUNCS
        for node in walk(expr)
    )


def scalar_subqueries(expr: Expr) -> List[ScalarSubquery]:
    """Scalar subqueries at *this* scope (their interiors are not walked)."""
    return [node for node in walk(expr) if isinstance(node, ScalarSubquery)]


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order walk; does not descend into scalar-subquery bodies."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, TupleExpr):
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
        for value in expr.values:
            yield from walk(value)
    elif isinstance(expr, Like):
        yield from walk(expr.operand)
    elif isinstance(expr, CaseExpr):
        for cond, result in expr.whens:
            yield from walk(cond)
            yield from walk(result)
        if expr.default is not None:
            yield from walk(expr.default)


def like_matcher(pattern: str) -> Callable[[str], bool]:
    """Compile a LIKE pattern (``%`` wildcards only) to a predicate.

    Segments between wildcards must appear left to right; leading/trailing
    segments are anchored. The common cases reduce to str builtins:
    ``'PROMO%'`` → startswith, ``'%green%'`` → contains, exact otherwise.
    """
    parts = pattern.split("%")
    if len(parts) == 1:
        return lambda s: s == pattern
    head, tail, middle = parts[0], parts[-1], [p for p in parts[1:-1] if p]
    if not middle:
        if head and tail:
            return lambda s: (
                len(s) >= len(head) + len(tail)
                and s.startswith(head)
                and s.endswith(tail)
            )
        if head:
            return lambda s: s.startswith(head)
        if tail:
            return lambda s: s.endswith(tail)
        return lambda s: True  # bare '%' / '%%'

    def match(s: str) -> bool:
        if head and not s.startswith(head):
            return False
        if tail and not s.endswith(tail):
            return False
        pos = len(head)
        end = len(s) - len(tail)
        for seg in middle:
            idx = s.find(seg, pos, end)
            if idx < 0:
                return False
            pos = idx + len(seg)
        return True

    return match


_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compile_expr(
    expr: Expr, scalars: Dict[int, object]
) -> Callable[[Dict[str, object]], object]:
    """Compile ``expr`` to a ``row -> value`` closure.

    ``scalars`` maps ``id(ScalarSubquery node) -> resolved value``; the
    closure reads it at call time, so the executor may fill it after
    compilation but before the first row is evaluated.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Column):
        name = expr.name
        return lambda row: row[name]
    if isinstance(expr, ScalarSubquery):
        key = id(expr)
        return lambda row: scalars[key]
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            left = compile_expr(expr.left, scalars)
            right = compile_expr(expr.right, scalars)
            return lambda row: bool(left(row)) and bool(right(row))
        if expr.op == "or":
            left = compile_expr(expr.left, scalars)
            right = compile_expr(expr.right, scalars)
            return lambda row: bool(left(row)) or bool(right(row))
        fn = _BINOPS[expr.op]
        left = compile_expr(expr.left, scalars)
        right = compile_expr(expr.right, scalars)
        return lambda row: fn(left(row), right(row))
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, scalars)
        if expr.op == "-":
            return lambda row: -operand(row)
        return lambda row: not operand(row)
    if isinstance(expr, TupleExpr):
        fns = [compile_expr(item, scalars) for item in expr.items]
        return lambda row: tuple(fn(row) for fn in fns)
    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, scalars)
        values = frozenset(compile_expr(v, scalars)({}) for v in expr.values)
        if expr.negated:
            return lambda row: operand(row) not in values
        return lambda row: operand(row) in values
    if isinstance(expr, Like):
        operand = compile_expr(expr.operand, scalars)
        match = like_matcher(expr.pattern)
        return lambda row: match(operand(row))
    if isinstance(expr, CaseExpr):
        whens = [
            (compile_expr(cond, scalars), compile_expr(result, scalars))
            for cond, result in expr.whens
        ]
        default = (
            compile_expr(expr.default, scalars)
            if expr.default is not None
            else (lambda row: None)
        )

        def case(row):
            for cond, result in whens:
                if cond(row):
                    return result(row)
            return default(row)

        return case
    if isinstance(expr, FuncCall):
        return _compile_func(expr, scalars)
    if isinstance(expr, Star):
        raise SqlError("'*' is only valid in COUNT(*) or as a select item")
    raise SqlError(f"cannot compile expression {expr!r}")


def _compile_func(expr: FuncCall, scalars: Dict[int, object]):
    if expr.name in AGGREGATE_FUNCS:
        raise SqlError(
            f"aggregate {expr.name.upper()} outside a grouped select item"
        )
    if expr.name == "coalesce":
        fns = [compile_expr(arg, scalars) for arg in expr.args]

        def coalesce(row):
            for fn in fns:
                value = fn(row)
                if value is not None:
                    return value
            return None

        return coalesce
    if expr.name == "floor":
        if len(expr.args) != 1:
            raise SqlError("FLOOR takes one argument")
        operand = compile_expr(expr.args[0], scalars)
        return lambda row: math.floor(operand(row))
    if expr.name == "substring":
        if len(expr.args) != 3:
            raise SqlError("SUBSTRING takes (string, start, length)")
        base = compile_expr(expr.args[0], scalars)
        start = compile_expr(expr.args[1], scalars)
        length = compile_expr(expr.args[2], scalars)

        def substring(row):
            s = base(row)
            i = start(row) - 1  # SQL is 1-indexed
            return s[i : i + length(row)]

        return substring
    raise SqlError(f"unknown function {expr.name!r}")  # pragma: no cover
