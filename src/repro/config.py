"""Device and core configurations (paper Table IV plus SSD-level parameters).

The paper compares six computational SSDs that share the SSD substrate
(8-channel flash array at 1 GB/s per channel, 2 GB LPDDR5 DRAM at 8 GB/s
effective, PCIe Gen4 x4 host link) and differ only in the compute engines and
their integration:

====================  ==========  =======================================
Name                  Data source  Per-core memory architecture
====================  ==========  =======================================
``Baseline``          SSD DRAM    32 KiB 8-way L1D + 256 KiB 16-way L2
``UDP``               SSD DRAM    256 KiB scratchpad (accelerator lanes)
``Prefetch``          SSD DRAM    L1D + L2 + DCPT prefetcher
``AssasinSp``         flash       64 KiB scratchpad + 64+64 KiB ping-pong
``AssasinSb``         flash       64 KiB scratchpad + 64+64 KiB streambuffer
                                  (S=8, P=2) + stream ISA
``AssasinSb$``        flash       AssasinSb + 32 KiB 8-way L1D fallback
====================  ==========  =======================================

Everything here is a frozen dataclass; simulators never mutate configs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.utils.units import GIB, KIB


class DataSource(enum.Enum):
    """Where a compute engine sources storage data from (Table IV column 2)."""

    DRAM = "dram"
    FLASH_STREAM = "flash_stream"


class PrefetcherKind(enum.Enum):
    """Hardware prefetcher attached to the L1D, if any."""

    NONE = "none"
    STRIDE = "stride"
    DCPT = "dcpt"


class EngineKind(enum.Enum):
    """Compute-engine family: general-purpose RISC-V core or UDP lane."""

    RISCV = "riscv"
    UDP = "udp"


#: Execution engines for the functional ISA simulation. ``"reference"`` is
#: the per-instruction interpreter loop (``repro.isa.interpreter``);
#: ``"fast"`` is the predecoding superblock engine (``repro.isa.fastpath``),
#: bit-exact with the reference and the default since the differential
#: conformance suite locked the two together.
EXEC_ENGINES: Tuple[str, ...] = ("reference", "fast")

#: Cycle-costing timing models for the core pipeline (``repro.core.coster``).
#: ``"static"`` is the historical fixed-latency model and the default;
#: ``"predictive"`` adds BTB + tournament branch prediction, load-use hazard
#: bubbles and operand-dependent multi-cycle mul/div. Architectural results
#: are identical across models — only cycle accounting changes.
PIPELINE_MODELS: Tuple[str, ...] = ("static", "predictive")


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative write-back cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency_cycles: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigError("cache dimensions must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.ways} ways of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class ScratchpadConfig:
    """A software-managed SRAM scratchpad tightly coupled to the pipeline."""

    size_bytes: int
    access_latency_cycles: int = 1
    port_width_bytes: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("scratchpad size must be positive")
        if self.access_latency_cycles < 1:
            raise ConfigError("scratchpad access latency must be >= 1 cycle")


@dataclass(frozen=True)
class StreamBufferConfig:
    """Input/output stream buffers (Section V-B).

    Each direction holds up to ``num_streams`` (S) circular buffers of
    ``pages_per_stream`` (P) flash pages; the core accesses only the stream
    head through a small prefetched FIFO, which is what makes the structure
    fast (Figure 20).
    """

    num_streams: int = 8
    pages_per_stream: int = 2
    page_bytes: int = 4096
    head_latency_cycles: int = 1
    max_access_bytes: int = 64

    def __post_init__(self) -> None:
        if self.num_streams <= 0 or self.pages_per_stream <= 0:
            raise ConfigError("stream buffer S and P must be positive")
        if self.page_bytes <= 0 or self.page_bytes % 64 != 0:
            raise ConfigError("stream buffer page size must be a positive multiple of 64")

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of one direction (S * P * page)."""
        return self.num_streams * self.pages_per_stream * self.page_bytes


@dataclass(frozen=True)
class CoreConfig:
    """One in-SSD compute engine (a row of Table IV)."""

    name: str
    engine: EngineKind = EngineKind.RISCV
    frequency_ghz: float = 1.0
    data_source: DataSource = DataSource.DRAM
    l1d: Optional[CacheConfig] = None
    l2: Optional[CacheConfig] = None
    prefetcher: PrefetcherKind = PrefetcherKind.NONE
    scratchpad: Optional[ScratchpadConfig] = None
    pingpong: Optional[ScratchpadConfig] = None
    streambuffer: Optional[StreamBufferConfig] = None
    stream_isa: bool = False
    #: Functional execution engine: "fast" (predecoded superblocks) or
    #: "reference" (per-instruction interpreter). Architecturally identical;
    #: see docs/ARCHITECTURE.md "Execution engines".
    exec_engine: str = "fast"
    #: Cycle-costing timing model: "static" (fixed latencies) or
    #: "predictive" (branch predictor + hazards + operand-dependent mul/div).
    #: See docs/ARCHITECTURE.md "Core timing models".
    pipeline_model: str = "static"

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigError("core frequency must be positive")
        if self.exec_engine not in EXEC_ENGINES:
            raise ConfigError(
                f"unknown exec engine {self.exec_engine!r}; known: {EXEC_ENGINES}"
            )
        if self.pipeline_model not in PIPELINE_MODELS:
            raise ConfigError(
                f"unknown pipeline model {self.pipeline_model!r}; known: {PIPELINE_MODELS}"
            )
        if self.stream_isa and self.streambuffer is None:
            raise ConfigError("stream ISA requires a stream buffer")
        if self.data_source is DataSource.FLASH_STREAM:
            if self.streambuffer is None and self.pingpong is None:
                raise ConfigError(
                    "flash-stream data source needs a stream buffer or ping-pong scratchpad"
                )
        if self.prefetcher is not PrefetcherKind.NONE and self.l1d is None:
            raise ConfigError("a prefetcher requires an L1D cache")

    @property
    def clock_period_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    @property
    def bypasses_dram(self) -> bool:
        """True when storage data never transits the SSD DRAM (ASSASIN path)."""
        return self.data_source is DataSource.FLASH_STREAM


@dataclass(frozen=True)
class FlashConfig:
    """NAND flash array geometry and ONFI-style timing."""

    channels: int = 8
    chips_per_channel: int = 8
    dies_per_chip: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 256
    pages_per_block: int = 256
    page_bytes: int = 4096
    # Timing: array read into the page register, program, erase, and the
    # channel transfer rate. Table IV specifies 1 GB/s read AND write per
    # channel: with 32 planes per channel operating independently
    # (multi-plane + cache program), 120 us tPROG sustains
    # 32 * 4 KiB / 120 us = 1.09 GB/s of programming per channel, so the
    # channel bus is the binding write constraint, as the paper assumes.
    read_latency_ns: float = 12_000.0
    program_latency_ns: float = 120_000.0
    erase_latency_ns: float = 1_500_000.0
    channel_bandwidth_bytes_per_ns: float = 1.0  # 1 GB/s

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"flash geometry field {name} must be positive")

    @property
    def pages_per_chip(self) -> int:
        return self.dies_per_chip * self.planes_per_die * self.blocks_per_plane * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.channels * self.chips_per_channel * self.pages_per_chip

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_bytes

    @property
    def page_transfer_ns(self) -> float:
        """Time to move one page across the channel bus."""
        return self.page_bytes / self.channel_bandwidth_bytes_per_ns

    @property
    def array_bandwidth_bytes_per_ns(self) -> float:
        """Aggregate sequential-read bandwidth of all channels (8 GB/s here)."""
        return self.channels * self.channel_bandwidth_bytes_per_ns


@dataclass(frozen=True)
class DRAMConfig:
    """SSD-internal DRAM: a shared bandwidth pool plus a fixed access latency.

    The 60 ns effective latency (LPDDR5 row-hit dominated streaming access,
    as seen by an in-order core past its L2) reproduces the paper's Section
    III-A anchor: a single baseline core running Filter lands at ~0.63 GB/s.
    """

    capacity_bytes: int = 2 * GIB
    bandwidth_bytes_per_ns: float = 8.0  # 8 GB/s effective LPDDR5
    latency_ns: float = 60.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_bytes_per_ns <= 0:
            raise ConfigError("DRAM capacity and bandwidth must be positive")


@dataclass(frozen=True)
class HostInterfaceConfig:
    """Host link (PCIe Gen4 x4 by default: 8 GB/s each direction)."""

    bandwidth_bytes_per_ns: float = 8.0
    latency_ns: float = 1_000.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_ns <= 0:
            raise ConfigError("host interface bandwidth must be positive")


#: Fault scopes a :class:`HardFault` can take out at once.
HARD_FAULT_KINDS: Tuple[str, ...] = ("channel", "chip", "plane")


@dataclass(frozen=True)
class HardFault:
    """A permanent hardware failure with an onset time.

    From ``onset_ns`` on, every read landing inside the failed scope
    returns no data: a ``"channel"`` fault kills all chips behind one
    channel, a ``"chip"`` fault one chip, and a ``"plane"`` fault one
    (die, plane) pair of one chip. Pages in the dead zone are only
    recoverable through RAID-group reconstruction.
    """

    kind: str
    channel: int
    chip: int = -1
    die: int = -1
    plane: int = -1
    onset_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in HARD_FAULT_KINDS:
            raise ConfigError(
                f"unknown hard-fault kind {self.kind!r}; known: {HARD_FAULT_KINDS}"
            )
        if self.channel < 0:
            raise ConfigError("hard fault needs a channel")
        if self.kind in ("chip", "plane") and self.chip < 0:
            raise ConfigError(f"{self.kind} fault needs a chip index")
        if self.kind == "plane" and (self.die < 0 or self.plane < 0):
            raise ConfigError("plane fault needs die and plane indices")
        if self.onset_ns < 0:
            raise ConfigError("hard-fault onset cannot be negative")


@dataclass(frozen=True)
class FaultConfig:
    """Seeded fault-campaign parameters (``repro.faults``).

    Media faults are sampled per page-read attempt from an RNG keyed by
    ``(seed, physical page, per-page read count)``, so a campaign is a pure
    function of its seed: same seed, same corrupted bits, same recovery
    report.

    * ``page_error_rate`` — probability a read picks up sparse raw-NAND
      noise (``noisy_bits`` flips spread over distinct ECC codewords;
      always correctable by SECDED, scrubbed after correction).
    * ``uncorrectable_rate`` — probability a read picks up a dense burst
      (multiple flips in one codeword; uncorrectable). A fraction
      ``transient_fraction`` of bursts clears on a read-retry (shifted
      sense threshold); the rest are permanent media faults that need
      RAID reconstruction plus block retirement.
    * ``slow_read_rate`` — probability of a latency outlier ("slow die")
      adding ``slow_read_extra_ns`` to the read.
    * ``failures`` — scheduled :class:`HardFault` whole-unit failures.
    * Read-retry: up to ``max_read_retries`` re-reads with exponential
      backoff (``retry_backoff_ns * 2**attempt``).
    * ``raid_k`` — data stripes per RAID-4 recovery group (parity page per
      ``raid_k`` data pages).
    """

    seed: int = 1
    page_error_rate: float = 0.0
    noisy_bits: int = 3
    uncorrectable_rate: float = 0.0
    transient_fraction: float = 0.5
    slow_read_rate: float = 0.0
    slow_read_extra_ns: float = 150_000.0
    failures: Tuple[HardFault, ...] = ()
    max_read_retries: int = 3
    retry_backoff_ns: float = 4_000.0
    raid_k: int = 4

    def __post_init__(self) -> None:
        for name in (
            "page_error_rate",
            "uncorrectable_rate",
            "transient_fraction",
            "slow_read_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be within [0, 1], got {value}")
        if self.page_error_rate + self.uncorrectable_rate > 1.0:
            raise ConfigError("page_error_rate + uncorrectable_rate cannot exceed 1")
        if self.noisy_bits <= 0:
            raise ConfigError("noisy_bits must be positive")
        if self.slow_read_extra_ns < 0:
            raise ConfigError("slow_read_extra_ns cannot be negative")
        if self.max_read_retries < 0:
            raise ConfigError("max_read_retries cannot be negative")
        if self.retry_backoff_ns < 0:
            raise ConfigError("retry_backoff_ns cannot be negative")
        if not 2 <= self.raid_k <= 6:
            raise ConfigError("raid_k must be within 2..6 (RAID-4 stripe math)")


#: Arbitration policies understood by the serving layer (``repro.serve``).
ARBITRATION_POLICIES: Tuple[str, ...] = ("rr", "wrr", "drr")


@dataclass(frozen=True)
class ServeConfig:
    """Multi-tenant serving-layer parameters (``repro.serve``).

    Each tenant owns an NVMe submission/completion queue pair of
    ``queue_depth`` entries. The device-side scheduler keeps at most
    ``max_inflight`` commands dispatched onto the engines/channels at once,
    picking the next queue with the ``arbitration`` policy:

    * ``"rr"``  — plain round-robin over non-empty queues,
    * ``"wrr"`` — smooth weighted round-robin (dispatch *count* proportional
      to tenant weight),
    * ``"drr"`` — deficit round-robin with a per-visit quantum of
      ``quantum_pages * weight`` pages (dispatch *pages* proportional to
      weight, fair under unequal command sizes).

    ``weights`` optionally overrides the per-tenant weights positionally; an
    empty tuple keeps each :class:`~repro.serve.workload.TenantSpec` weight.

    ``command_timeout_ns`` (0 disables) bounds one service attempt: an
    attempt that overruns the deadline is aborted and re-issued, up to
    ``max_command_retries`` times; the final attempt always runs to
    completion and is flagged as timed out if it too overruns.
    """

    queue_depth: int = 64
    arbitration: str = "wrr"
    max_inflight: int = 8
    quantum_pages: int = 8
    weights: Tuple[float, ...] = ()
    command_timeout_ns: float = 0.0
    max_command_retries: int = 1

    def __post_init__(self) -> None:
        if self.queue_depth <= 0:
            raise ConfigError("serve queue depth must be positive")
        if self.max_inflight <= 0:
            raise ConfigError("serve max_inflight must be positive")
        if self.quantum_pages <= 0:
            raise ConfigError("serve quantum_pages must be positive")
        if self.command_timeout_ns < 0:
            raise ConfigError("command_timeout_ns cannot be negative")
        if self.max_command_retries < 0:
            raise ConfigError("max_command_retries cannot be negative")
        if self.arbitration not in ARBITRATION_POLICIES:
            raise ConfigError(
                f"unknown arbitration policy {self.arbitration!r}; "
                f"known: {ARBITRATION_POLICIES}"
            )
        if any(w <= 0 for w in self.weights):
            raise ConfigError("serve weights must be positive")


#: Dispatch engines of the discrete-event kernel (``repro.sim.kernel``).
#: Mirrored here (rather than imported) to keep config import-light.
SIM_ENGINES: Tuple[str, ...] = ("reference", "fast")


@dataclass(frozen=True)
class SimConfig:
    """Execution strategy of the simulator itself (``repro.sim`` & friends).

    Nothing here changes an observable result — every knob selects a
    faster implementation of the same deterministic semantics, and the
    differential suite (``tests/test_sim_differential.py``) pins
    byte-identical fingerprints across all of them:

    * ``engine`` — dispatch loop of :class:`repro.sim.Simulator`:
      ``"reference"`` (single heapq) or ``"fast"`` (calendar queue with
      batched same-instant dispatch and allocation-free process resumes).
    * ``memoize_pricing`` — share one sampled kernel run per
      (device config, kernel, sample size) process-wide
      (:data:`repro.kernels.pricing.PRICING_CACHE`); invalidated by
      construction when the config changes.
    * ``shard_workers`` — run the fleet layer's independent devices in
      this many OS worker processes (0 = the shared in-process loop)
      under conservative time-window synchronisation at the router
      boundary; see ``repro.fleet.sharded`` for the eligibility rules.
    * ``shard_window_ns`` — the conservative synchronisation window the
      sharded workers advance in lockstep.
    """

    engine: str = "reference"
    memoize_pricing: bool = False
    shard_workers: int = 0
    shard_window_ns: float = 200_000.0

    def __post_init__(self) -> None:
        if self.engine not in SIM_ENGINES:
            raise ConfigError(
                f"unknown sim engine {self.engine!r}; known: {SIM_ENGINES}"
            )
        if self.shard_workers < 0:
            raise ConfigError("shard_workers cannot be negative")
        if self.shard_window_ns <= 0:
            raise ConfigError("shard_window_ns must be positive")

    def activated(self):
        """Context manager applying the engine + pricing knobs process-wide.

        The previous defaults are restored on exit, so tests and CLI
        runs can scope a strategy to one campaign.
        """
        import contextlib

        from repro.kernels.pricing import PRICING_CACHE
        from repro.sim.kernel import set_default_engine

        @contextlib.contextmanager
        def _scope():
            previous_engine = set_default_engine(self.engine)
            previous_pricing = PRICING_CACHE.enabled
            PRICING_CACHE.enabled = self.memoize_pricing
            try:
                yield self
            finally:
                set_default_engine(previous_engine)
                PRICING_CACHE.enabled = previous_pricing

        return _scope()


@dataclass(frozen=True)
class SSDConfig:
    """A complete computational SSD (Table IV row + shared substrate)."""

    name: str
    core: CoreConfig
    num_cores: int = 8
    flash: FlashConfig = field(default_factory=FlashConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    host: HostInterfaceConfig = field(default_factory=HostInterfaceConfig)
    crossbar: bool = True

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("SSD needs at least one compute engine")
        if self.core.bypasses_dram and not self.crossbar:
            # Channel-local compute (Figure 7 alternative): legal, used by the
            # skew study, but each core then binds to one channel.
            if self.num_cores != self.flash.channels:
                raise ConfigError(
                    "channel-local compute requires one core per channel "
                    f"(cores={self.num_cores}, channels={self.flash.channels})"
                )

    def with_cores(self, num_cores: int) -> "SSDConfig":
        """A copy with a different engine count (used by the scaling study)."""
        return replace(self, num_cores=num_cores)

    def with_exec_engine(self, exec_engine: str) -> "SSDConfig":
        """A copy whose cores use the given functional execution engine."""
        return replace(self, core=replace(self.core, exec_engine=exec_engine))

    def with_pipeline_model(self, pipeline_model: str) -> "SSDConfig":
        """A copy whose cores use the given cycle-costing timing model."""
        return replace(self, core=replace(self.core, pipeline_model=pipeline_model))


# ---------------------------------------------------------------------------
# Named Table IV configurations
# ---------------------------------------------------------------------------

_L1D = CacheConfig(size_bytes=32 * KIB, ways=8, line_bytes=64, hit_latency_cycles=2)
_L2 = CacheConfig(size_bytes=256 * KIB, ways=16, line_bytes=64, hit_latency_cycles=12)
_SP64 = ScratchpadConfig(size_bytes=64 * KIB, access_latency_cycles=1, port_width_bytes=8)
# Table IV: "64KB I + 64KB O ping-pong scratchpads" — 64 KB per direction
# total, i.e. two 32 KiB halves that swap roles.
_PINGPONG = ScratchpadConfig(size_bytes=32 * KIB, access_latency_cycles=1, port_width_bytes=8)
_SB = StreamBufferConfig(num_streams=8, pages_per_stream=2, page_bytes=4096)


def baseline_core() -> CoreConfig:
    """State-of-the-art general-purpose computational SSD engine (Figure 4)."""
    return CoreConfig(
        name="Baseline",
        data_source=DataSource.DRAM,
        l1d=_L1D,
        l2=_L2,
    )


def udp_core() -> CoreConfig:
    """UDP accelerator lane: DRAM-fed 256 KiB private scratchpad."""
    return CoreConfig(
        name="UDP",
        engine=EngineKind.UDP,
        data_source=DataSource.DRAM,
        scratchpad=ScratchpadConfig(size_bytes=256 * KIB, access_latency_cycles=1),
    )


def prefetch_core() -> CoreConfig:
    """Baseline plus the best Gem5 prefetcher (DCPT) on the L1D."""
    return CoreConfig(
        name="Prefetch",
        data_source=DataSource.DRAM,
        l1d=_L1D,
        l2=_L2,
        prefetcher=PrefetcherKind.DCPT,
    )


def assasin_sp_core() -> CoreConfig:
    """ASSASIN with ping-pong scratchpads double-buffering flash data."""
    return CoreConfig(
        name="AssasinSp",
        data_source=DataSource.FLASH_STREAM,
        scratchpad=_SP64,
        pingpong=_PINGPONG,
    )


def assasin_sb_core() -> CoreConfig:
    """ASSASIN with stream buffers and the stream ISA extension."""
    return CoreConfig(
        name="AssasinSb",
        data_source=DataSource.FLASH_STREAM,
        scratchpad=_SP64,
        streambuffer=_SB,
        stream_isa=True,
    )


def assasin_sb_cache_core() -> CoreConfig:
    """AssasinSb plus a 32 KiB L1D fallback cache backed by SSD DRAM."""
    return CoreConfig(
        name="AssasinSb$",
        data_source=DataSource.FLASH_STREAM,
        scratchpad=_SP64,
        streambuffer=_SB,
        stream_isa=True,
        l1d=_L1D,
    )


def _ssd(core: CoreConfig, **kwargs) -> SSDConfig:
    return SSDConfig(name=core.name, core=core, **kwargs)


def baseline_config(**kwargs) -> SSDConfig:
    """Full SSD with the Baseline engines (Figure 4 architecture)."""
    return _ssd(baseline_core(), **kwargs)


def udp_config(**kwargs) -> SSDConfig:
    """Full SSD with UDP accelerator lanes."""
    return _ssd(udp_core(), **kwargs)


def prefetch_config(**kwargs) -> SSDConfig:
    """Full SSD with DCPT-prefetching cache engines."""
    return _ssd(prefetch_core(), **kwargs)


def assasin_sp_config(**kwargs) -> SSDConfig:
    """Full ASSASIN SSD with ping-pong scratchpad engines."""
    return _ssd(assasin_sp_core(), **kwargs)


def assasin_sb_config(**kwargs) -> SSDConfig:
    """Full ASSASIN SSD with stream-buffer engines (the paper's pick)."""
    return _ssd(assasin_sb_core(), **kwargs)


def assasin_sb_cache_config(**kwargs) -> SSDConfig:
    """Full ASSASIN SSD with stream buffers plus a fallback L1D."""
    return _ssd(assasin_sb_cache_core(), **kwargs)


CONFIG_FACTORIES = {
    "Baseline": baseline_config,
    "UDP": udp_config,
    "Prefetch": prefetch_config,
    "AssasinSp": assasin_sp_config,
    "AssasinSb": assasin_sb_config,
    "AssasinSb$": assasin_sb_cache_config,
}

CONFIG_NAMES: Tuple[str, ...] = tuple(CONFIG_FACTORIES)


def named_config(name: str, **kwargs) -> SSDConfig:
    """Look up a Table IV configuration by its paper name."""
    try:
        factory = CONFIG_FACTORIES[name]
    except KeyError:
        raise ConfigError(f"unknown configuration {name!r}; known: {CONFIG_NAMES}") from None
    return factory(**kwargs)


def all_configs(**kwargs) -> Dict[str, SSDConfig]:
    """All six Table IV configurations, keyed by name."""
    return {name: factory(**kwargs) for name, factory in CONFIG_FACTORIES.items()}
