"""Multi-tenant NVMe serving layer: queue pairs → arbiter → scheduler → cores.

Where :func:`repro.ssd.simulate_offload` times *one* scomp end to end, this
package serves *mixed traffic from many tenants* against one computational
SSD: per-tenant NVMe submission/completion queue pairs, pluggable QoS
arbitration (round-robin, weighted round-robin, deficit round-robin),
bounded device-side dispatch onto the stream cores and flash channels, and
per-tenant SLO metrics (p50/p95/p99 latency, throughput, queue depth,
core/channel utilisation). :func:`simulate_serve` is the one-call entry
point; :meth:`repro.ssd.device.ComputationalSSD.serve` runs the same layer
on an existing device.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import ServeConfig, SSDConfig
from repro.serve.arbiter import (
    Arbiter,
    DeficitRoundRobinArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.serve.metrics import ServeReport, TenantMetrics
from repro.serve.queues import CompletionQueue, QueuePair, ServeCommand, SubmissionQueue
from repro.serve.scheduler import ServingLayer
from repro.serve.service import SERVE_OUT_LPA_BASE, DeviceService
from repro.serve.workload import TenantSpec, WorkloadGenerator, default_tenants

__all__ = [
    "Arbiter",
    "RoundRobinArbiter",
    "WeightedRoundRobinArbiter",
    "DeficitRoundRobinArbiter",
    "make_arbiter",
    "ServeCommand",
    "SubmissionQueue",
    "CompletionQueue",
    "QueuePair",
    "TenantSpec",
    "WorkloadGenerator",
    "default_tenants",
    "TenantMetrics",
    "ServeReport",
    "ServingLayer",
    "DeviceService",
    "SERVE_OUT_LPA_BASE",
    "simulate_serve",
]


def simulate_serve(
    config: SSDConfig,
    tenants: Sequence[TenantSpec],
    serve_config: Optional[ServeConfig] = None,
    duration_ns: float = 2_000_000.0,
    seed: int = 0,
    layout_skew: float = 0.0,
    samples: Optional[Dict[str, object]] = None,
    telemetry=None,
) -> ServeReport:
    """Serve a multi-tenant workload on a fresh device (one-call entry point).

    ``samples`` optionally supplies precomputed core-phase
    :class:`~repro.core.core.CoreRunResult` objects keyed by kernel name, so
    policy comparisons can reuse one sampling pass. ``telemetry`` (a
    :class:`~repro.telemetry.Telemetry`) attaches a tracer/registry to the
    fresh device — pass ``Telemetry.tracing()`` to record a Chrome trace.
    """
    from repro.ssd.device import ComputationalSSD

    device = ComputationalSSD(config, layout_skew=layout_skew, telemetry=telemetry)
    return device.serve(
        tenants,
        serve_config=serve_config,
        duration_ns=duration_ns,
        seed=seed,
        samples=samples,
    )
