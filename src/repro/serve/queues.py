"""Per-tenant NVMe submission/completion queue pairs.

NVMe's multi-queue design gives every tenant (VM, container, application
stream) its own submission queue (SQ) and completion queue (CQ); the
device-side arbiter decides which SQ supplies the next command. Modelling
the pairs explicitly is what makes QoS *mechanical* rather than assumed:
queueing delay, head-of-line blocking, and drop behaviour all fall out of
bounded FIFOs plus the arbitration policy in :mod:`repro.serve.arbiter`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.errors import ServeError
from repro.ssd.host_interface import Completion, NVMeCommand, ReadCommand, ScompCommand, WriteCommand


@dataclass
class ServeCommand:
    """One tenant command in flight through the serving layer."""

    tenant: str
    command: NVMeCommand
    submitted_ns: float
    pages: int
    dispatched_ns: float = -1.0
    completed_ns: float = -1.0
    bytes_in: int = 0
    bytes_out: int = 0
    #: 'ok' | 'recovered' (retry or RAID rebuild was needed) | 'failed'
    status: str = "ok"
    attempts: int = 0  # service attempts (1 + command-level retries)
    page_retries: int = 0
    reconstructions: int = 0
    timed_out: bool = False
    #: writes only: rewrite the command's own LPAs in place (invalidating
    #: the previously mapped flash pages) instead of appending fresh ones.
    overwrite: bool = False

    @property
    def kind(self) -> str:
        if isinstance(self.command, ScompCommand):
            return "scomp"
        if isinstance(self.command, ReadCommand):
            return "read"
        if isinstance(self.command, WriteCommand):
            return "write"
        return "unknown"

    @property
    def wait_ns(self) -> float:
        """Time spent queued before dispatch."""
        if self.dispatched_ns < 0:
            raise ServeError("command not yet dispatched")
        return self.dispatched_ns - self.submitted_ns

    @property
    def latency_ns(self) -> float:
        """Submission-to-completion latency."""
        if self.completed_ns < 0:
            raise ServeError("command not yet completed")
        return self.completed_ns - self.submitted_ns


class SubmissionQueue:
    """A bounded FIFO of commands awaiting dispatch."""

    def __init__(self, tenant: str, depth: int) -> None:
        if depth <= 0:
            raise ServeError("submission queue depth must be positive")
        self.tenant = tenant
        self.depth = depth
        self._fifo: Deque[ServeCommand] = deque()
        self.peak_depth = 0
        self.total_enqueued = 0
        self.total_rejected = 0

    def push(self, cmd: ServeCommand) -> bool:
        """Enqueue; returns False (command dropped) when the queue is full."""
        if len(self._fifo) >= self.depth:
            self.total_rejected += 1
            return False
        self._fifo.append(cmd)
        self.total_enqueued += 1
        self.peak_depth = max(self.peak_depth, len(self._fifo))
        return True

    def head(self) -> ServeCommand:
        if not self._fifo:
            raise ServeError(f"submission queue {self.tenant!r} is empty")
        return self._fifo[0]

    def pop(self) -> ServeCommand:
        if not self._fifo:
            raise ServeError(f"submission queue {self.tenant!r} is empty")
        return self._fifo.popleft()

    def __len__(self) -> int:
        return len(self._fifo)

    def __bool__(self) -> bool:
        return bool(self._fifo)


class CompletionQueue:
    """Completion entries posted back to one tenant."""

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self.entries: List[Completion] = []

    def post(self, completion: Completion) -> None:
        self.entries.append(completion)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class QueuePair:
    """One tenant's SQ/CQ pair plus its arbitration weight."""

    tenant: str
    weight: float
    sq: SubmissionQueue
    cq: CompletionQueue = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ServeError(f"tenant {self.tenant!r} weight must be positive")
        if self.cq is None:
            self.cq = CompletionQueue(self.tenant)

    @classmethod
    def create(cls, tenant: str, weight: float, depth: int) -> "QueuePair":
        return cls(tenant=tenant, weight=weight, sq=SubmissionQueue(tenant, depth))


def make_queue_pairs(
    tenants, queue_depth: int, weight_overrides: Optional[tuple] = None
) -> List[QueuePair]:
    """Build one queue pair per tenant spec, with optional weight overrides."""
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ServeError(f"tenant names must be unique, got {names}")
    if weight_overrides:
        if len(weight_overrides) != len(names):
            raise ServeError(
                f"{len(weight_overrides)} weight overrides for {len(names)} tenants"
            )
        weights = list(weight_overrides)
    else:
        weights = [t.weight for t in tenants]
    return [QueuePair.create(n, w, queue_depth) for n, w in zip(names, weights)]
