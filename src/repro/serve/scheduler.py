"""Device-side serving scheduler: queue pairs → arbiter → engines/channels.

The :class:`ServingLayer` is the firmware's admission-and-dispatch loop for
multi-tenant traffic. It runs on the unified discrete-event kernel
(:class:`~repro.sim.Simulator`) and keeps at most
``ServeConfig.max_inflight`` commands on the device at once; whenever a
slot frees, the arbiter picks the next tenant queue. The stream-core pool
is a :class:`~repro.sim.PooledResource` — scomp commands take the
least-loaded core's lane, exactly the greedy discipline the firmware's
offload path applies.

Service timing reuses the device's existing greedy timelines — the flash
array (per-plane/per-bus FIFOs), the crossbar hop, the host link — so the
serving layer sees exactly the contention the offload path models, and
issue order is always nondecreasing in time because all issues happen at
event-dispatch instants:

* **read**: every page is fetched through the FTL + flash array, then the
  data crosses the host link.
* **write**: data crosses the link from the host, then each page takes a
  channel-bus slot (program latency hides behind plane parallelism and the
  write cache, as in the firmware write path).
* **scomp**: pages are fetched through the FTL + array + crossbar to the
  least-loaded stream core, which consumes them in order at the kernel's
  sampled cycles/byte; only the (usually small) result crosses the link.

Closed-loop tenants resubmit on completion; open-loop tenants arrive on
their seeded process until ``duration_ns`` and the device then drains.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.config import ServeConfig
from repro.errors import ServeError
from repro.kernels import get_kernel
from repro.serve.arbiter import make_arbiter
from repro.serve.metrics import ServeReport, TenantMetrics, build_tenant_metrics
from repro.serve.queues import QueuePair, ServeCommand, make_queue_pairs
from repro.serve.workload import TenantSpec, WorkloadGenerator
from repro.sim import PooledResource, Simulator
from repro.ssd.host_interface import ReadCommand, ScompCommand, WriteCommand

#: LPA namespace for serve-path result/write pages; disjoint from tenant
#: regions and from the firmware's offload-result namespace (1 << 40).
_SERVE_OUT_LPA_BASE = 1 << 41


class ServingLayer:
    """Multi-tenant NVMe serving on top of one :class:`ComputationalSSD`."""

    def __init__(
        self,
        device,
        tenants: Sequence[TenantSpec],
        config: Optional[ServeConfig] = None,
        seed: int = 0,
        samples: Optional[Dict[str, object]] = None,
        recovery=None,
    ) -> None:
        if not tenants:
            raise ServeError("serving layer needs at least one tenant")
        self.device = device
        self.specs = list(tenants)
        self.config = config or ServeConfig()
        self.seed = seed
        #: Optional :class:`~repro.ssd.firmware.RecoveryController`; when
        #: set, every read/scomp page fetch runs the retry → RAID-rebuild
        #: ladder and commands complete with degraded/failed statuses
        #: instead of silently serving corrupt data.
        self.recovery = recovery
        #: Shared device telemetry: the event queue stamps one instant per
        #: dispatched callback, the serving layer adds queue-wait, firmware
        #: service, and stream-core spans, and the per-tenant histograms
        #: live in the device's counter registry (``serve.<tenant>.*``).
        self.telemetry = device.telemetry
        self._tracer = self.telemetry.tracer
        self.events = Simulator(tracer=self._tracer)
        self.pairs: List[QueuePair] = make_queue_pairs(
            self.specs, self.config.queue_depth, self.config.weights or None
        )
        self._pair_by_name = {p.tenant: p for p in self.pairs}
        self._gen_by_name: Dict[str, WorkloadGenerator] = {}
        self.arbiter = make_arbiter(self.config.arbitration, self.config.quantum_pages)
        self.metrics: Dict[str, TenantMetrics] = build_tenant_metrics(
            self.specs, [p.weight for p in self.pairs], registry=self.telemetry.counters
        )

        # Carve a private, pre-populated LPA region per tenant.
        self.generators: List[WorkloadGenerator] = []
        base = 0
        for index, spec in enumerate(self.specs):
            gen = WorkloadGenerator(spec, index, seed, base)
            self.generators.append(gen)
            self._gen_by_name[spec.name] = gen
            self.device.ftl.populate(range(base, base + spec.region_pages))
            base += spec.region_pages

        # Core-phase samples per scomp kernel (cycles/byte, output ratio).
        self._samples: Dict[str, object] = dict(samples or {})
        for spec in self.specs:
            if spec.kind == "scomp" and spec.kernel not in self._samples:
                self._samples[spec.kernel] = self.device.sample_kernel(
                    get_kernel(spec.kernel)
                )

        page = self.device.config.flash.page_bytes
        period_ns = self.device.config.core.clock_period_ns
        self._page_bytes = page
        self._cpp_page_ns = {
            name: s.cycles_per_byte * page * period_ns for name, s in self._samples.items()
        }
        self._out_ratio = {
            name: (s.bytes_out / s.bytes_in if s.bytes_in else 0.0)
            for name, s in self._samples.items()
        }

        #: The stream-core pool as unit timelines on the simulation kernel;
        #: scomp service claims the least-loaded lane.
        self._cores = PooledResource("serve.cores", self.device.config.num_cores)
        self._out_lpa = itertools.count(_SERVE_OUT_LPA_BASE)
        self._inflight = 0
        self._duration_ns = 0.0
        self._horizon_ns = 0.0

    # -- run loop --------------------------------------------------------------

    def run(self, duration_ns: float = 2_000_000.0) -> ServeReport:
        """Admit traffic for ``duration_ns``, drain, and report."""
        if duration_ns <= 0:
            raise ServeError("serve duration must be positive")
        self._duration_ns = duration_ns
        for gen in self.generators:
            if gen.spec.closed_loop:
                for _ in range(gen.spec.outstanding):
                    self.events.schedule_at(
                        0.0, lambda g=gen: self._submit(g), label=f"submit:{gen.spec.name}"
                    )
            else:
                first = gen.next_interarrival_ns()
                if first < duration_ns:
                    self.events.schedule_at(
                        first, lambda g=gen: self._arrive(g), label=f"arrive:{gen.spec.name}"
                    )
        self.events.run()
        return self._report()

    # -- traffic ---------------------------------------------------------------

    def _arrive(self, gen: WorkloadGenerator) -> None:
        now = self.events.now
        self._submit(gen)
        next_ns = now + gen.next_interarrival_ns()
        if next_ns < self._duration_ns:
            self.events.schedule_at(
                next_ns, lambda: self._arrive(gen), label=f"arrive:{gen.spec.name}"
            )

    def _submit(self, gen: WorkloadGenerator) -> None:
        now = self.events.now
        if gen.spec.closed_loop and now >= self._duration_ns:
            return  # closed loops stop resubmitting past the horizon
        pair = self._pair_by_name[gen.spec.name]
        metrics = self.metrics[gen.spec.name]
        metrics.submitted += 1
        cmd = gen.make_command(self.device.host, now)
        if not pair.sq.push(cmd):
            metrics.dropped += 1
            self._tracer.instant(f"queue/{gen.spec.name}", "drop", now)
        else:
            self.device.host.submit(cmd.command)
            self._tracer.instant(f"queue/{gen.spec.name}", "submit", now)
        metrics.queue_depth.observe(len(pair.sq))
        self._pump()

    # -- dispatch --------------------------------------------------------------

    def _pump(self) -> None:
        while self._inflight < self.config.max_inflight:
            pair = self.arbiter.select(self.pairs)
            if pair is None:
                return
            cmd = pair.sq.pop()
            self._dispatch(cmd)

    def _dispatch(self, cmd: ServeCommand) -> None:
        now = self.events.now
        cmd.dispatched_ns = now
        # Time spent sitting in the tenant submission queue.
        self._tracer.complete(f"queue/{cmd.tenant}", "wait", cmd.submitted_ns, now)
        timeout = self.config.command_timeout_ns
        issue = now
        while True:
            cmd.attempts += 1
            done_ns = self._service(cmd, issue)
            if timeout <= 0 or done_ns - issue <= timeout:
                break
            if cmd.attempts > self.config.max_command_retries:
                # Out of retries: let the final attempt run to completion
                # but flag the SLO breach.
                cmd.timed_out = True
                break
            # The host aborts at the deadline and re-issues; the work the
            # aborted attempt queued on the timelines stays (wasted slots),
            # exactly like a real abort racing in-flight flash operations.
            self.metrics[cmd.tenant].cmd_retries += 1
            issue += timeout
        cmd.completed_ns = done_ns
        if isinstance(cmd.command, ScompCommand):
            kind = "scomp"
        elif isinstance(cmd.command, ReadCommand):
            kind = "read"
        else:
            kind = "write"
        self._tracer.complete("scheduler", f"dispatch:{cmd.tenant}", now, now)
        # One firmware track per command kind: spans of in-flight commands
        # overlap freely, and same-named spans keep the B/E pairing valid.
        self._tracer.complete(f"firmware/{kind}", f"service:{kind}", now, done_ns)
        self._inflight += 1
        self.events.schedule_at(
            done_ns, lambda: self._complete(cmd), label=f"complete:{cmd.tenant}"
        )

    def _complete(self, cmd: ServeCommand) -> None:
        self._inflight -= 1
        self._horizon_ns = max(self._horizon_ns, cmd.completed_ns)
        metrics = self.metrics[cmd.tenant]
        metrics.record_completion(
            cmd.latency_ns,
            cmd.wait_ns,
            cmd.bytes_in,
            cmd.bytes_out,
            status=cmd.status,
            timed_out=cmd.timed_out,
        )
        pair = self._pair_by_name[cmd.tenant]
        pair.cq.post(
            self.device.host.complete(
                cmd.command, cmd.submitted_ns, cmd.completed_ns, cmd.bytes_out or cmd.bytes_in
            )
        )
        gen = self._gen_by_name[cmd.tenant]
        if gen.spec.closed_loop:
            self.events.schedule(
                gen.spec.think_ns, lambda: self._submit(gen), label=f"think:{gen.spec.name}"
            )
        self._pump()

    # -- service models --------------------------------------------------------

    def _service(self, cmd: ServeCommand, now: float) -> float:
        # Each attempt starts from a clean fault slate; only the attempt
        # that actually completes determines the command's final status.
        cmd.status = "ok"
        cmd.page_retries = 0
        cmd.reconstructions = 0
        if isinstance(cmd.command, ScompCommand):
            return self._service_scomp(cmd, now)
        if isinstance(cmd.command, ReadCommand):
            return self._service_read(cmd, now)
        if isinstance(cmd.command, WriteCommand):
            return self._service_write(cmd, now)
        raise ServeError(f"cannot service command {cmd.command!r}")

    def _fetch_page(self, cmd: ServeCommand, lpa: int, now: float) -> float:
        """Fetch one page through the recovery ladder; returns its done time."""
        outcome = self.recovery.read_lpa(lpa, now)
        cmd.page_retries += outcome.retries
        if outcome.status == "reconstructed":
            cmd.reconstructions += 1
        if outcome.status == "failed":
            cmd.status = "failed"
        elif outcome.status in ("retried", "reconstructed") and cmd.status == "ok":
            # In-line ECC correction ('corrected') is the routine path and
            # stays 'ok'; only the retry ladder / RAID rebuild degrade.
            cmd.status = "recovered"
        return outcome.done_ns

    def _service_read(self, cmd: ServeCommand, now: float) -> float:
        device = self.device
        flash_done = now
        for lpa in cmd.command.lpas:
            if self.recovery is not None:
                flash_done = max(flash_done, self._fetch_page(cmd, lpa, now))
            else:
                record = device.array.service_read(device.ftl.lookup(lpa), now)
                flash_done = max(flash_done, record.done_ns)
        nbytes = cmd.pages * self._page_bytes
        cmd.bytes_in = nbytes
        cmd.bytes_out = nbytes
        return device.host.transfer(nbytes, flash_done, to_host=True)

    def _service_write(self, cmd: ServeCommand, now: float) -> float:
        device = self.device
        nbytes = cmd.pages * self._page_bytes
        cmd.bytes_in = nbytes
        landed = device.host.transfer(nbytes, now, to_host=False)
        done = landed
        for _ in range(cmd.pages):
            ppa = device.ftl.write(next(self._out_lpa))
            record = device.array.service_write(ppa, landed)
            # As in the firmware write path: the command acks once the data
            # is across the channel bus; tPROG hides behind plane
            # parallelism and the controller write cache.
            done = max(done, record.array_done_ns)
        return done

    def _service_scomp(self, cmd: ServeCommand, now: float) -> float:
        device = self.device
        kernel_name = cmd.command.kernel
        try:
            cpp_page_ns = self._cpp_page_ns[kernel_name]
        except KeyError:
            raise ServeError(f"no core-phase sample for kernel {kernel_name!r}") from None
        core = self._cores.least_loaded()
        first_page_ns = None
        flash_done = now
        for lpas in cmd.command.lpa_lists:
            for lpa in lpas:
                ppa = device.ftl.lookup(lpa)
                if self.recovery is not None:
                    page_done = self._fetch_page(cmd, lpa, now)
                else:
                    page_done = device.array.service_read(ppa, now).done_ns
                hop = (
                    device.crossbar.route(
                        core, ppa.channel, self._page_bytes, at_ns=page_done
                    )
                    if device.crossbar.enabled
                    else 0
                )
                arrival = page_done + hop
                flash_done = max(flash_done, arrival)
                if first_page_ns is None or arrival < first_page_ns:
                    first_page_ns = arrival
        compute_ns = cmd.pages * cpp_page_ns
        start = max(now, self._cores.free_at(core), first_page_ns or now)
        # The core consumes pages in order, so it can neither start before
        # the first page lands nor finish before the last one does; the
        # lane is held to the command's completion but only the compute
        # span counts toward the core's utilisation.
        done = max(start + compute_ns, flash_done)
        self._tracer.complete(f"core/{core}", f"scomp:{kernel_name}", start, done)
        self._cores.occupy(core, start, done, busy_ns=compute_ns)
        cmd.bytes_in = cmd.pages * self._page_bytes
        cmd.bytes_out = int(cmd.bytes_in * self._out_ratio.get(kernel_name, 0.0))
        return device.host.transfer(max(cmd.bytes_out, 1), done, to_host=True)

    # -- reporting -------------------------------------------------------------

    def _report(self) -> ServeReport:
        horizon = max(self._horizon_ns, self.events.now)
        return ServeReport(
            config_name=self.device.config.name,
            policy=self.config.arbitration,
            seed=self.seed,
            duration_ns=self._duration_ns,
            horizon_ns=horizon,
            tenants=self.metrics,
            core_utilisation=[
                self._cores.busy_ns(core) / horizon if horizon > 0 else 0.0
                for core in range(self._cores.units)
            ],
            channel_utilisation=self.device.array.channel_utilisations(horizon)
            if horizon > 0
            else [0.0] * self.device.config.flash.channels,
            faults=dict(self.recovery.fault_counters()) if self.recovery else {},
            reconstruction_ns=list(self.recovery.reconstruction_ns)
            if self.recovery
            else [],
        )
