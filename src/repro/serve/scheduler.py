"""Device-side serving scheduler: queue pairs → arbiter → engines/channels.

The :class:`ServingLayer` is the firmware's admission-and-dispatch loop for
multi-tenant traffic. It runs on the unified discrete-event kernel
(:class:`~repro.sim.Simulator`) and keeps at most
``ServeConfig.max_inflight`` commands on the device at once; whenever a
slot frees, the arbiter picks the next tenant queue. The stream-core pool
is a :class:`~repro.sim.PooledResource` — scomp commands take the
least-loaded core's lane, exactly the greedy discipline the firmware's
offload path applies.

Service timing reuses the device's existing greedy timelines — the flash
array (per-plane/per-bus FIFOs), the crossbar hop, the host link — so the
serving layer sees exactly the contention the offload path models, and
issue order is always nondecreasing in time because all issues happen at
event-dispatch instants:

* **read**: every page is fetched through the FTL + flash array, then the
  data crosses the host link.
* **write**: data crosses the link from the host, then each page takes a
  channel-bus slot (program latency hides behind plane parallelism and the
  write cache, as in the firmware write path).
* **scomp**: pages are fetched through the FTL + array + crossbar to the
  least-loaded stream core, which consumes them in order at the kernel's
  sampled cycles/byte; only the (usually small) result crosses the link.

Closed-loop tenants resubmit on completion; open-loop tenants arrive on
their seeded process until ``duration_ns`` and the device then drains.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.config import ServeConfig
from repro.errors import ServeError
from repro.serve.arbiter import make_arbiter
from repro.serve.metrics import ServeReport, TenantMetrics, build_tenant_metrics
from repro.serve.queues import QueuePair, ServeCommand, make_queue_pairs
from repro.serve.service import DeviceService
from repro.serve.workload import TenantSpec, WorkloadGenerator
from repro.sim import Simulator
from repro.ssd.host_interface import ReadCommand, ScompCommand


class ServingLayer:
    """Multi-tenant NVMe serving on top of one :class:`ComputationalSSD`."""

    def __init__(
        self,
        device,
        tenants: Sequence[TenantSpec],
        config: Optional[ServeConfig] = None,
        seed: int = 0,
        samples: Optional[Dict[str, object]] = None,
        recovery=None,
    ) -> None:
        if not tenants:
            raise ServeError("serving layer needs at least one tenant")
        self.device = device
        self.specs = list(tenants)
        self.config = config or ServeConfig()
        self.seed = seed
        #: Shared device telemetry: the event queue stamps one instant per
        #: dispatched callback, the serving layer adds queue-wait, firmware
        #: service, and stream-core spans, and the per-tenant histograms
        #: live in the device's counter registry (``serve.<tenant>.*``).
        self.telemetry = device.telemetry
        self._tracer = self.telemetry.tracer
        self.events = Simulator(tracer=self._tracer)
        self.pairs: List[QueuePair] = make_queue_pairs(
            self.specs, self.config.queue_depth, self.config.weights or None
        )
        self._pair_by_name = {p.tenant: p for p in self.pairs}
        self._gen_by_name: Dict[str, WorkloadGenerator] = {}
        self.arbiter = make_arbiter(self.config.arbitration, self.config.quantum_pages)
        self.metrics: Dict[str, TenantMetrics] = build_tenant_metrics(
            self.specs, [p.weight for p in self.pairs], registry=self.telemetry.counters
        )

        # Carve a private, pre-populated LPA region per tenant.
        self.generators: List[WorkloadGenerator] = []
        #: First LPA of each tenant's region; driven tenants (the SQL
        #: session) address their scans inside their own carved region.
        self.region_base: Dict[str, int] = {}
        base = 0
        for index, spec in enumerate(self.specs):
            gen = WorkloadGenerator(spec, index, seed, base)
            self.generators.append(gen)
            self._gen_by_name[spec.name] = gen
            self.region_base[spec.name] = base
            self.device.ftl.populate(range(base, base + spec.region_pages))
            base += spec.region_pages

        #: The per-device service paths (core-phase samples, stream-core
        #: pool, out-LPA allocator) live in a :class:`DeviceService` so the
        #: fleet router can reuse them against N peer devices; ``recovery``
        #: (a :class:`~repro.ssd.firmware.RecoveryController`) routes every
        #: read/scomp page fetch through the retry → RAID-rebuild ladder
        #: instead of silently serving corrupt data.
        self.service = DeviceService(
            device,
            samples=samples,
            kernels=[s.kernel for s in self.specs if s.kind == "scomp"],
            recovery=recovery,
        )
        self._inflight = 0
        self._duration_ns = 0.0
        self._horizon_ns = 0.0
        self._began = False
        # Driven-command plumbing (SQL sessions): per-tenant overflow
        # backlogs (driven commands spill instead of dropping), completion
        # hooks keyed by command id, and completion observers (the live
        # cost source taps these for its service-time EWMA).
        self._backlog: Dict[str, Deque[ServeCommand]] = {}
        self._hooks: Dict[int, Callable[[ServeCommand], None]] = {}
        self._observers: List[Callable[[ServeCommand], None]] = []

    @property
    def recovery(self):
        return self.service.recovery

    @recovery.setter
    def recovery(self, value) -> None:
        self.service.recovery = value

    # -- run loop --------------------------------------------------------------

    def run(self, duration_ns: float = 2_000_000.0) -> ServeReport:
        """Admit traffic for ``duration_ns``, drain, and report."""
        self.begin(duration_ns)
        return self.finish()

    def begin(self, duration_ns: float = 2_000_000.0) -> None:
        """Start admitting tenant traffic without running the event loop.

        Driven sessions (the SQL REPL) call ``begin`` once, then inject
        their own commands via :meth:`submit_driven` and advance the shared
        simulator themselves; :meth:`finish` drains and reports. ``sql``
        tenants generate no traffic of their own, so they are skipped here.
        """
        if duration_ns <= 0:
            raise ServeError("serve duration must be positive")
        if self._began:
            raise ServeError("serving layer already began admitting traffic")
        self._began = True
        self._duration_ns = duration_ns
        for gen in self.generators:
            if gen.spec.kind == "sql":
                continue
            if gen.spec.closed_loop:
                for _ in range(gen.spec.outstanding):
                    self.events.schedule_at(
                        0.0, lambda g=gen: self._submit(g), label=f"submit:{gen.spec.name}"
                    )
            else:
                first = gen.next_arrival_ns(0.0)
                if first < duration_ns:
                    self.events.schedule_at(
                        first, lambda g=gen: self._arrive(g), label=f"arrive:{gen.spec.name}"
                    )

    def finish(self) -> ServeReport:
        """Drain every pending event and build the report."""
        if not self._began:
            raise ServeError("serving layer never began admitting traffic")
        self.events.run()
        return self._report()

    # -- traffic ---------------------------------------------------------------

    def _arrive(self, gen: WorkloadGenerator) -> None:
        now = self.events.now
        self._submit(gen)
        next_ns = gen.next_arrival_ns(now)
        if next_ns < self._duration_ns:
            self.events.schedule_at(
                next_ns, lambda: self._arrive(gen), label=f"arrive:{gen.spec.name}"
            )

    def _submit(self, gen: WorkloadGenerator) -> None:
        now = self.events.now
        if gen.spec.closed_loop and now >= self._duration_ns:
            return  # closed loops stop resubmitting past the horizon
        pair = self._pair_by_name[gen.spec.name]
        metrics = self.metrics[gen.spec.name]
        metrics.submitted += 1
        cmd = gen.make_command(self.device.host, now)
        if not pair.sq.push(cmd):
            metrics.dropped += 1
            self._tracer.instant(f"queue/{gen.spec.name}", "drop", now)
        else:
            self.device.host.submit(cmd.command)
            self._tracer.instant(f"queue/{gen.spec.name}", "submit", now)
        metrics.queue_depth.observe(len(pair.sq))
        self._pump()

    # -- driven commands (SQL sessions) ----------------------------------------

    def submit_driven(
        self,
        tenant: str,
        command,
        pages: int,
        on_complete: Optional[Callable[[ServeCommand], None]] = None,
    ) -> ServeCommand:
        """Inject one externally built command into ``tenant``'s queue pair.

        Driven commands arbitrate against every other tenant exactly like
        generated traffic, but they never drop: when the submission queue is
        full they spill to a per-tenant backlog that refills as completions
        free slots. ``on_complete`` fires (with the finished
        :class:`ServeCommand`) when the command completes.
        """
        if tenant not in self._pair_by_name:
            raise ServeError(f"unknown tenant {tenant!r}")
        now = self.events.now
        cmd = ServeCommand(
            tenant=tenant, command=command, submitted_ns=now, pages=pages
        )
        if on_complete is not None:
            self._hooks[command.command_id] = on_complete
        metrics = self.metrics[tenant]
        metrics.submitted += 1
        self.device.host.submit(command)
        pair = self._pair_by_name[tenant]
        if not pair.sq.push(cmd):
            self._backlog.setdefault(tenant, deque()).append(cmd)
            self._tracer.instant(f"queue/{tenant}", "backlog", now)
        else:
            self._tracer.instant(f"queue/{tenant}", "submit", now)
        metrics.queue_depth.observe(len(pair.sq))
        self._pump()
        return cmd

    def add_completion_observer(self, observer: Callable[[ServeCommand], None]) -> None:
        """Call ``observer(cmd)`` on every command completion (any tenant)."""
        self._observers.append(observer)

    @property
    def inflight(self) -> int:
        """Commands currently being serviced on the device."""
        return self._inflight

    def backlog_depth(self, tenant: Optional[str] = None) -> int:
        """Spilled driven commands awaiting a queue slot."""
        if tenant is not None:
            return len(self._backlog.get(tenant, ()))
        return sum(len(q) for q in self._backlog.values())

    # -- dispatch --------------------------------------------------------------

    def _pump(self) -> None:
        while self._inflight < self.config.max_inflight:
            pair = self.arbiter.select(self.pairs)
            if pair is None:
                return
            cmd = pair.sq.pop()
            self._dispatch(cmd)

    def _dispatch(self, cmd: ServeCommand) -> None:
        now = self.events.now
        cmd.dispatched_ns = now
        # Time spent sitting in the tenant submission queue.
        self._tracer.complete(f"queue/{cmd.tenant}", "wait", cmd.submitted_ns, now)
        timeout = self.config.command_timeout_ns
        issue = now
        while True:
            cmd.attempts += 1
            done_ns = self._service(cmd, issue)
            if timeout <= 0 or done_ns - issue <= timeout:
                break
            if cmd.attempts > self.config.max_command_retries:
                # Out of retries: let the final attempt run to completion
                # but flag the SLO breach.
                cmd.timed_out = True
                break
            # The host aborts at the deadline and re-issues; the work the
            # aborted attempt queued on the timelines stays (wasted slots),
            # exactly like a real abort racing in-flight flash operations.
            self.metrics[cmd.tenant].cmd_retries += 1
            issue += timeout
        cmd.completed_ns = done_ns
        if isinstance(cmd.command, ScompCommand):
            kind = "scomp"
        elif isinstance(cmd.command, ReadCommand):
            kind = "read"
        else:
            kind = "write"
        self._tracer.complete("scheduler", f"dispatch:{cmd.tenant}", now, now)
        # One firmware track per command kind: spans of in-flight commands
        # overlap freely, and same-named spans keep the B/E pairing valid.
        self._tracer.complete(f"firmware/{kind}", f"service:{kind}", now, done_ns)
        self._inflight += 1
        self.events.schedule_at(
            done_ns, lambda: self._complete(cmd), label=f"complete:{cmd.tenant}"
        )

    def _complete(self, cmd: ServeCommand) -> None:
        self._inflight -= 1
        self._horizon_ns = max(self._horizon_ns, cmd.completed_ns)
        metrics = self.metrics[cmd.tenant]
        metrics.record_completion(
            cmd.latency_ns,
            cmd.wait_ns,
            cmd.bytes_in,
            cmd.bytes_out,
            status=cmd.status,
            timed_out=cmd.timed_out,
        )
        pair = self._pair_by_name[cmd.tenant]
        pair.cq.post(
            self.device.host.complete(
                cmd.command, cmd.submitted_ns, cmd.completed_ns, cmd.bytes_out or cmd.bytes_in
            )
        )
        gen = self._gen_by_name[cmd.tenant]
        if gen.spec.closed_loop:
            self.events.schedule(
                gen.spec.think_ns, lambda: self._submit(gen), label=f"think:{gen.spec.name}"
            )
        backlog = self._backlog.get(cmd.tenant)
        if backlog:
            while backlog and pair.sq.push(backlog[0]):
                backlog.popleft()
        for observer in self._observers:
            observer(cmd)
        hook = self._hooks.pop(cmd.command.command_id, None)
        if hook is not None:
            hook(cmd)
        self._pump()

    # -- service models --------------------------------------------------------

    def _service(self, cmd: ServeCommand, now: float) -> float:
        """Service one command on the device (delegates to :class:`DeviceService`)."""
        return self.service.service(cmd, now)

    # -- reporting -------------------------------------------------------------

    def _report(self) -> ServeReport:
        horizon = max(self._horizon_ns, self.events.now)
        cores = self.service.cores
        return ServeReport(
            config_name=self.device.config.name,
            policy=self.config.arbitration,
            seed=self.seed,
            duration_ns=self._duration_ns,
            horizon_ns=horizon,
            tenants=self.metrics,
            core_utilisation=[
                cores.busy_ns(core) / horizon if horizon > 0 else 0.0
                for core in range(cores.units)
            ],
            channel_utilisation=self.device.array.channel_utilisations(horizon)
            if horizon > 0
            else [0.0] * self.device.config.flash.channels,
            faults=dict(self.recovery.fault_counters()) if self.recovery else {},
            reconstruction_ns=list(self.recovery.reconstruction_ns)
            if self.recovery
            else [],
            sim_events=self.events.processed,
        )
