"""Pluggable arbitration over per-tenant submission queues.

The arbiter answers one question, repeatedly: *which tenant's queue supplies
the next command slot?* Three policies, all deterministic:

* :class:`RoundRobinArbiter` — the NVMe default: rotate over non-empty
  queues, one command each. No isolation: a chatty tenant gets the same
  share as everyone else.
* :class:`WeightedRoundRobinArbiter` — NVMe's optional WRR arbitration,
  implemented as *smooth* WRR (the nginx algorithm): every queue accrues
  its weight in credit each round and the largest credit wins, so service
  is weight-proportional in command *count* and never bursty.
* :class:`DeficitRoundRobinArbiter` — Shreedhar & Varghese DRR: each visit
  to a non-empty queue adds ``quantum * weight`` pages of deficit, and the
  head command dispatches only when its page count fits. Service is
  weight-proportional in *pages*, which keeps a tenant issuing huge
  commands from starving small-command tenants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ServeError
from repro.serve.queues import QueuePair


class Arbiter:
    """Base class: pick the queue pair that supplies the next command."""

    name = "base"

    def select(self, pairs: Sequence[QueuePair]) -> Optional[QueuePair]:
        raise NotImplementedError


class RoundRobinArbiter(Arbiter):
    """Cycle over tenants, skipping empty queues."""

    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def select(self, pairs: Sequence[QueuePair]) -> Optional[QueuePair]:
        n = len(pairs)
        for offset in range(n):
            pair = pairs[(self._next + offset) % n]
            if pair.sq:
                self._next = (self._next + offset + 1) % n
                return pair
        return None


class WeightedRoundRobinArbiter(Arbiter):
    """Smooth weighted round-robin: dispatch counts proportional to weight."""

    name = "wrr"

    def __init__(self) -> None:
        self._credit: Dict[str, float] = {}

    def select(self, pairs: Sequence[QueuePair]) -> Optional[QueuePair]:
        active = [p for p in pairs if p.sq]
        if not active:
            return None
        total = 0.0
        best: Optional[QueuePair] = None
        for pair in active:
            credit = self._credit.get(pair.tenant, 0.0) + pair.weight
            self._credit[pair.tenant] = credit
            total += pair.weight
            if best is None or credit > self._credit[best.tenant]:
                best = pair
        # Idle tenants keep no credit: weight shares apply to *backlogged*
        # queues only (work-conserving), matching classic WRR semantics.
        for pair in pairs:
            if not pair.sq:
                self._credit.pop(pair.tenant, None)
        self._credit[best.tenant] -= total
        return best


class DeficitRoundRobinArbiter(Arbiter):
    """Deficit round-robin in pages: byte-fair under unequal command sizes."""

    name = "drr"

    #: Hard bound on arbitration rounds per select; a correctly configured
    #: arbiter converges in one or two rounds because deficits accumulate.
    MAX_ROUNDS = 1_000_000

    def __init__(self, quantum_pages: int = 8) -> None:
        if quantum_pages <= 0:
            raise ServeError("DRR quantum must be positive")
        self.quantum_pages = quantum_pages
        self._deficit: Dict[str, float] = {}
        self._next = 0
        self._fresh_visit = True

    def select(self, pairs: Sequence[QueuePair]) -> Optional[QueuePair]:
        if not any(p.sq for p in pairs):
            return None
        n = len(pairs)
        for _ in range(self.MAX_ROUNDS):
            pair = pairs[self._next % n]
            if not pair.sq:
                # An emptied queue forfeits its deficit (standard DRR: no
                # banking credit while idle).
                self._deficit.pop(pair.tenant, None)
                self._advance()
                continue
            if self._fresh_visit:
                self._deficit[pair.tenant] = (
                    self._deficit.get(pair.tenant, 0.0)
                    + self.quantum_pages * pair.weight
                )
                self._fresh_visit = False
            head = pair.sq.head()
            if self._deficit[pair.tenant] >= head.pages:
                self._deficit[pair.tenant] -= head.pages
                return pair
            self._advance()
        raise ServeError("DRR arbitration failed to converge")

    def _advance(self) -> None:
        self._next += 1
        self._fresh_visit = True


def make_arbiter(policy: str, quantum_pages: int = 8) -> Arbiter:
    """Instantiate an arbitration policy by its ``ServeConfig`` name."""
    if policy == "rr":
        return RoundRobinArbiter()
    if policy == "wrr":
        return WeightedRoundRobinArbiter()
    if policy == "drr":
        return DeficitRoundRobinArbiter(quantum_pages=quantum_pages)
    raise ServeError(f"unknown arbitration policy {policy!r}; known: rr, wrr, drr")
