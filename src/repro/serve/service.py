"""Per-device analytic service paths shared by the serving layer and fleet.

:class:`DeviceService` owns the pieces of command service that belong to
*one* :class:`~repro.ssd.device.ComputationalSSD`: the core-phase samples
(cycles/byte and output ratio per scomp kernel), the stream-core pool as
unit timelines, the serve-path output-LPA allocator, and the read/write/
scomp service models that walk the device's flash, crossbar, and host-link
timelines. :class:`~repro.serve.scheduler.ServingLayer` delegates to one
instance; the fleet router (:mod:`repro.fleet.router`) builds one per
device so N peers can be serviced on a single shared simulation kernel.

The service models are exactly the ones documented on the serving layer:

* **read**: every page is fetched through the FTL + flash array (optionally
  through the recovery ladder), then the data crosses the host link.
* **write**: data crosses the link from the host, then each page takes a
  channel-bus slot; tPROG hides behind plane parallelism.
* **scomp**: pages stream through FTL + array + crossbar to the
  least-loaded stream core, which consumes them in order at the kernel's
  sampled cycles/byte; only the result crosses the link.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional

from repro.errors import ServeError
from repro.kernels import get_kernel
from repro.serve.queues import ServeCommand
from repro.sim import PooledResource
from repro.ssd.host_interface import ReadCommand, ScompCommand, WriteCommand

#: LPA namespace for serve-path result/write pages; disjoint from tenant
#: regions and from the firmware's offload-result namespace (1 << 40).
SERVE_OUT_LPA_BASE = 1 << 41


class DeviceService:
    """Analytic read/write/scomp service against one computational SSD."""

    def __init__(
        self,
        device,
        samples: Optional[Dict[str, object]] = None,
        kernels: Iterable[str] = (),
        recovery=None,
        cores_name: str = "serve.cores",
        out_lpa_base: int = SERVE_OUT_LPA_BASE,
    ) -> None:
        self.device = device
        #: Optional :class:`~repro.ssd.firmware.RecoveryController`; when
        #: set, every read/scomp page fetch runs the retry → RAID-rebuild
        #: ladder and commands complete with degraded/failed statuses.
        self.recovery = recovery
        self._tracer = device.telemetry.tracer

        # Core-phase samples per scomp kernel (cycles/byte, output ratio).
        self.samples: Dict[str, object] = dict(samples or {})
        for kernel_name in kernels:
            if kernel_name not in self.samples:
                self.samples[kernel_name] = device.sample_kernel(get_kernel(kernel_name))

        page = device.config.flash.page_bytes
        period_ns = device.config.core.clock_period_ns
        self.page_bytes = page
        self._cpp_page_ns = {
            name: s.cycles_per_byte * page * period_ns
            for name, s in self.samples.items()
        }
        self._out_ratio = {
            name: (s.bytes_out / s.bytes_in if s.bytes_in else 0.0)
            for name, s in self.samples.items()
        }

        #: The stream-core pool as unit timelines on the simulation kernel;
        #: scomp service claims the least-loaded lane.
        self.cores = PooledResource(cores_name, device.config.num_cores)
        self._out_lpa = itertools.count(out_lpa_base)

    # -- sampling --------------------------------------------------------------

    def ensure_sample(self, kernel_name: str) -> None:
        """Sample ``kernel_name``'s core phase if not already cached."""
        if kernel_name not in self.samples:
            self.samples[kernel_name] = self.device.sample_kernel(
                get_kernel(kernel_name)
            )
            sample = self.samples[kernel_name]
            page = self.page_bytes
            period_ns = self.device.config.core.clock_period_ns
            self._cpp_page_ns[kernel_name] = (
                sample.cycles_per_byte * page * period_ns
            )
            self._out_ratio[kernel_name] = (
                sample.bytes_out / sample.bytes_in if sample.bytes_in else 0.0
            )

    def compute_ns_per_page(self, kernel_name: str) -> float:
        """Sampled core time to stream one flash page through ``kernel_name``."""
        try:
            return self._cpp_page_ns[kernel_name]
        except KeyError:
            raise ServeError(
                f"no core-phase sample for kernel {kernel_name!r}"
            ) from None

    def out_ratio(self, kernel_name: str) -> float:
        return self._out_ratio.get(kernel_name, 0.0)

    # -- service models --------------------------------------------------------

    def service(self, cmd: ServeCommand, now: float) -> float:
        """Service one command starting at ``now``; returns completion time."""
        # Each attempt starts from a clean fault slate; only the attempt
        # that actually completes determines the command's final status.
        cmd.status = "ok"
        cmd.page_retries = 0
        cmd.reconstructions = 0
        if isinstance(cmd.command, ScompCommand):
            return self.service_scomp(cmd, now)
        if isinstance(cmd.command, ReadCommand):
            return self.service_read(cmd, now)
        if isinstance(cmd.command, WriteCommand):
            return self.service_write(cmd, now)
        raise ServeError(f"cannot service command {cmd.command!r}")

    def fetch_page(self, cmd: ServeCommand, lpa: int, now: float) -> float:
        """Fetch one page through the recovery ladder; returns its done time."""
        outcome = self.recovery.read_lpa(lpa, now)
        cmd.page_retries += outcome.retries
        if outcome.status == "reconstructed":
            cmd.reconstructions += 1
        if outcome.status == "failed":
            cmd.status = "failed"
        elif outcome.status in ("retried", "reconstructed") and cmd.status == "ok":
            # In-line ECC correction ('corrected') is the routine path and
            # stays 'ok'; only the retry ladder / RAID rebuild degrade.
            cmd.status = "recovered"
        return outcome.done_ns

    def service_read(self, cmd: ServeCommand, now: float) -> float:
        device = self.device
        flash_done = now
        for lpa in cmd.command.lpas:
            if self.recovery is not None:
                flash_done = max(flash_done, self.fetch_page(cmd, lpa, now))
            else:
                record = device.array.service_read(device.ftl.lookup(lpa), now)
                flash_done = max(flash_done, record.done_ns)
        nbytes = cmd.pages * self.page_bytes
        cmd.bytes_in = nbytes
        cmd.bytes_out = nbytes
        return device.host.transfer(nbytes, flash_done, to_host=True)

    def service_write(self, cmd: ServeCommand, now: float) -> float:
        device = self.device
        nbytes = cmd.pages * self.page_bytes
        cmd.bytes_in = nbytes
        landed = device.host.transfer(nbytes, now, to_host=False)
        done = landed
        # Overwriting tenants rewrite their own LPAs: the FTL remaps each
        # one and invalidates its old flash page, which is what feeds the
        # garbage collector. The default appends to the serve-output
        # namespace (fresh LPAs, no invalidation).
        lpas = cmd.command.lpas if cmd.overwrite else None
        for i in range(cmd.pages):
            ppa = device.ftl.write(lpas[i] if lpas else next(self._out_lpa))
            record = device.array.service_write(ppa, landed)
            # As in the firmware write path: the command acks once the data
            # is across the channel bus; tPROG hides behind plane
            # parallelism and the controller write cache.
            done = max(done, record.array_done_ns)
        return done

    def service_scomp(self, cmd: ServeCommand, now: float) -> float:
        device = self.device
        kernel_name = cmd.command.kernel
        cpp_page_ns = self.compute_ns_per_page(kernel_name)
        core = self.cores.least_loaded()
        first_page_ns = None
        flash_done = now
        for lpas in cmd.command.lpa_lists:
            for lpa in lpas:
                ppa = device.ftl.lookup(lpa)
                if self.recovery is not None:
                    page_done = self.fetch_page(cmd, lpa, now)
                else:
                    page_done = device.array.service_read(ppa, now).done_ns
                hop = (
                    device.crossbar.route(
                        core, ppa.channel, self.page_bytes, at_ns=page_done
                    )
                    if device.crossbar.enabled
                    else 0
                )
                arrival = page_done + hop
                flash_done = max(flash_done, arrival)
                if first_page_ns is None or arrival < first_page_ns:
                    first_page_ns = arrival
        compute_ns = cmd.pages * cpp_page_ns
        start = max(now, self.cores.free_at(core), first_page_ns or now)
        # The core consumes pages in order, so it can neither start before
        # the first page lands nor finish before the last one does; the
        # lane is held to the command's completion but only the compute
        # span counts toward the core's utilisation.
        done = max(start + compute_ns, flash_done)
        self._tracer.complete(f"core/{core}", f"scomp:{kernel_name}", start, done)
        self.cores.occupy(core, start, done, busy_ns=compute_ns)
        cmd.bytes_in = cmd.pages * self.page_bytes
        cmd.bytes_out = int(cmd.bytes_in * self.out_ratio(kernel_name))
        return device.host.transfer(max(cmd.bytes_out, 1), done, to_host=True)
