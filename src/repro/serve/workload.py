"""Tenant workload specifications and deterministic traffic generators.

Two classic load models from queueing-system evaluation:

* **open loop** — commands arrive on a seeded stochastic process (Poisson
  or fixed-period) regardless of how the device keeps up; overload shows
  up as queue growth and drops. This is the model for "heavy traffic from
  many users".
* **closed loop** — each tenant keeps a fixed number of commands
  outstanding and submits the next one ``think_ns`` after a completion;
  load self-regulates, which is the model for batch/analytics clients.

Every random draw comes from one ``random.Random`` seeded from
``(global seed, tenant index)``, so a serve run is a pure function of its
inputs: same seed → identical arrival times, offsets, and metrics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import ServeError
from repro.serve.queues import ServeCommand
from repro.ssd.host_interface import HostInterface, NVMeCommand, ReadCommand, ScompCommand, WriteCommand

COMMAND_KINDS = ("scomp", "read", "write")
#: Tenant kinds: the three self-generating command kinds plus ``sql``, a
#: driven analytic tenant — the SQL session injects its own scan commands
#: through :meth:`ServingLayer.submit_driven`, so the traffic loop skips it.
TENANT_KINDS = COMMAND_KINDS + ("sql",)
ARRIVAL_PROCESSES = ("poisson", "fixed", "burst")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, QoS weight, and traffic shape."""

    name: str
    weight: float = 1.0
    kind: str = "scomp"  # 'scomp' | 'read' | 'write' | 'sql' (driven)
    kernel: str = "stat"  # scomp only: registry name of the offloaded kernel
    pages_per_command: int = 8
    interarrival_ns: float = 20_000.0  # open loop: mean gap between arrivals
    arrival: str = "poisson"  # 'poisson' | 'fixed' | 'burst'
    closed_loop: bool = False
    outstanding: int = 4  # closed loop: commands kept in flight
    think_ns: float = 0.0  # closed loop: completion-to-resubmit gap
    region_pages: int = 4096  # size of the tenant's private LPA region
    #: write only: rewrite LPAs inside the tenant's own region instead of
    #: appending to the serve-output namespace. In-place rewrites invalidate
    #: the old flash pages, which is what builds real GC pressure.
    overwrite: bool = False
    #: burst arrival: Poisson arrivals at ``interarrival_ns`` during the ON
    #: phase, silence during the OFF phase, phases alternating forever.
    burst_on_ns: float = 200_000.0
    burst_off_ns: float = 200_000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("tenant needs a name")
        if self.weight <= 0:
            raise ServeError(f"tenant {self.name!r}: weight must be positive")
        if self.kind not in TENANT_KINDS:
            raise ServeError(
                f"tenant {self.name!r}: unknown kind {self.kind!r}; known: {TENANT_KINDS}"
            )
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ServeError(
                f"tenant {self.name!r}: unknown arrival process {self.arrival!r}; "
                f"known: {ARRIVAL_PROCESSES}"
            )
        if self.pages_per_command <= 0:
            raise ServeError(f"tenant {self.name!r}: pages_per_command must be positive")
        if self.interarrival_ns <= 0:
            raise ServeError(f"tenant {self.name!r}: interarrival_ns must be positive")
        if self.closed_loop and self.outstanding <= 0:
            raise ServeError(f"tenant {self.name!r}: outstanding must be positive")
        if self.think_ns < 0:
            raise ServeError(f"tenant {self.name!r}: think_ns cannot be negative")
        if self.region_pages < self.pages_per_command:
            raise ServeError(
                f"tenant {self.name!r}: region_pages must cover at least one command"
            )
        if self.arrival == "burst" and (self.burst_on_ns <= 0 or self.burst_off_ns <= 0):
            raise ServeError(
                f"tenant {self.name!r}: burst phases must be positive"
            )
        if self.overwrite and self.kind != "write":
            raise ServeError(
                f"tenant {self.name!r}: overwrite only applies to write tenants"
            )


class WorkloadGenerator:
    """Deterministic per-tenant command source over a private LPA region."""

    def __init__(self, spec: TenantSpec, index: int, seed: int, lpa_base: int) -> None:
        self.spec = spec
        self.index = index
        self.lpa_base = lpa_base
        # One independent stream per (seed, tenant index); the constants
        # just decorrelate nearby seeds, any fixed primes would do.
        self.rng = random.Random((seed + 1) * 1_000_003 + index * 7_919)
        self.generated = 0

    def next_interarrival_ns(self) -> float:
        """Gap to the next open-loop arrival (exponential or fixed)."""
        if self.spec.arrival in ("poisson", "burst"):
            return self.rng.expovariate(1.0 / self.spec.interarrival_ns)
        return self.spec.interarrival_ns

    def next_arrival_ns(self, now_ns: float) -> float:
        """Absolute time of the next arrival after ``now_ns``.

        Poisson/fixed tenants arrive at ``now + gap``. Burst tenants draw
        Poisson gaps during the ON phase; a draw that lands in an OFF phase
        is carried into the next ON window (an on/off Markov-modulated
        process, the classic bursty-tenant model).
        """
        gap = self.next_interarrival_ns()
        if self.spec.arrival != "burst":
            return now_ns + gap
        period = self.spec.burst_on_ns + self.spec.burst_off_ns
        at = now_ns + gap
        phase = at % period
        if phase >= self.spec.burst_on_ns:  # landed in the OFF window
            at += period - phase  # carry to the start of the next ON window
        return at

    def _pick_lpas(self) -> List[int]:
        span = self.spec.region_pages - self.spec.pages_per_command
        start = self.lpa_base + (self.rng.randrange(span + 1) if span else 0)
        return list(range(start, start + self.spec.pages_per_command))

    def make_command(self, host: HostInterface, now_ns: float) -> ServeCommand:
        """Mint the tenant's next command with a device-unique command id."""
        if self.spec.kind == "sql":
            raise ServeError(
                f"tenant {self.spec.name!r} is driven: commands come from the "
                "SQL session via ServingLayer.submit_driven"
            )
        lpas = self._pick_lpas()
        command: NVMeCommand
        if self.spec.kind == "scomp":
            command = ScompCommand(
                command_id=host.next_id(), kernel=self.spec.kernel, lpa_lists=[lpas]
            )
        elif self.spec.kind == "read":
            command = ReadCommand(command_id=host.next_id(), lpas=lpas)
        else:
            command = WriteCommand(command_id=host.next_id(), lpas=lpas)
        self.generated += 1
        return ServeCommand(
            tenant=self.spec.name,
            command=command,
            submitted_ns=now_ns,
            pages=len(lpas),
            overwrite=self.spec.overwrite and self.spec.kind == "write",
        )


def default_tenants() -> List[TenantSpec]:
    """The CLI's stock mix: a weighted hot scomp tenant, a batch scomp
    tenant, and a plain-read tenant sharing the same device."""
    return [
        TenantSpec(
            name="hot", weight=4.0, kind="scomp", kernel="stat",
            pages_per_command=8, interarrival_ns=18_000.0,
        ),
        TenantSpec(
            name="batch", weight=1.0, kind="scomp", kernel="scan",
            pages_per_command=16, interarrival_ns=30_000.0,
        ),
        TenantSpec(
            name="reader", weight=1.0, kind="read",
            pages_per_command=4, interarrival_ns=20_000.0,
        ),
    ]
