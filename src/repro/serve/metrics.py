"""Per-tenant SLO metrics and the device-level serve report.

Latency tallies live in shared :class:`repro.telemetry.counters.Histogram`
objects (nearest-rank percentiles through
:func:`repro.utils.stats.percentile`, the same convention as the
firmware's background-IO p99), so a "p99 of X ns" always names a latency
some real command actually saw, and the serve numbers appear in the
device-wide :class:`~repro.telemetry.counters.CounterRegistry` snapshot
under ``serve.<tenant>.*`` instead of private per-module lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.counters import CounterRegistry, Histogram
from repro.utils.stats import percentile


@dataclass
class TenantMetrics:
    """Everything the serving layer observed about one tenant."""

    tenant: str
    weight: float
    kind: str
    latency: Histogram = field(default_factory=lambda: Histogram("latency_ns"))
    wait: Histogram = field(default_factory=lambda: Histogram("wait_ns"))
    queue_depth: Histogram = field(default_factory=lambda: Histogram("queue_depth"))
    submitted: int = 0
    completed: int = 0
    dropped: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Fault-campaign degradation accounting (all zero on clean runs).
    failed: int = 0
    recovered: int = 0
    timeouts: int = 0
    cmd_retries: int = 0

    # -- recording -----------------------------------------------------------

    def record_completion(
        self,
        latency_ns: float,
        wait_ns: float,
        bytes_in: int,
        bytes_out: int,
        status: str = "ok",
        timed_out: bool = False,
    ) -> None:
        self.completed += 1
        self.latency.observe(latency_ns)
        self.wait.observe(wait_ns)
        self.bytes_in += bytes_in
        self.bytes_out += bytes_out
        if status == "failed":
            self.failed += 1
        elif status == "recovered":
            self.recovered += 1
        if timed_out:
            self.timeouts += 1

    @property
    def succeeded(self) -> int:
        """Completions that returned correct data (possibly after recovery)."""
        return self.completed - self.failed

    # -- latency -------------------------------------------------------------

    @property
    def latencies_ns(self) -> List[float]:
        """Raw latency samples (the histogram's backing list)."""
        return self.latency.values

    @property
    def wait_ns(self) -> List[float]:
        return self.wait.values

    @property
    def queue_depth_samples(self) -> List[float]:
        return self.queue_depth.values

    @property
    def p50_latency_ns(self) -> float:
        return self.latency.percentile(50.0)

    @property
    def p95_latency_ns(self) -> float:
        return self.latency.percentile(95.0)

    @property
    def p99_latency_ns(self) -> float:
        return self.latency.percentile(99.0)

    @property
    def mean_latency_ns(self) -> float:
        return self.latency.mean

    @property
    def mean_wait_ns(self) -> float:
        return self.wait.mean

    # -- queue/throughput ----------------------------------------------------

    @property
    def max_queue_depth(self) -> int:
        return int(self.queue_depth.maximum) if self.queue_depth.count else 0

    @property
    def mean_queue_depth(self) -> float:
        return self.queue_depth.mean

    def throughput_bytes_per_ns(self, horizon_ns: float) -> float:
        return self.bytes_in / horizon_ns if horizon_ns > 0 else 0.0

    def meets_slo(self, p99_slo_ns: float) -> bool:
        """Did this tenant's observed p99 stay within its latency SLO?"""
        return self.completed > 0 and self.p99_latency_ns <= p99_slo_ns


@dataclass
class ServeReport:
    """Outcome of one multi-tenant serve run."""

    config_name: str
    policy: str
    seed: int
    duration_ns: float
    horizon_ns: float
    tenants: Dict[str, TenantMetrics]
    core_utilisation: List[float]
    channel_utilisation: List[float]
    #: Per-fault-class counters from the recovery controller (empty on
    #: clean runs) and the latency of every RAID reconstruction performed.
    faults: Dict[str, int] = field(default_factory=dict)
    reconstruction_ns: List[float] = field(default_factory=list)
    #: Events processed by the shared simulation kernel for this run —
    #: the denominator-free cost of the simulation itself, which the
    #: benchmark suite gates as events/sec of wall time. Not part of the
    #: fingerprint: it measures the simulator, not the workload outcome.
    sim_events: int = 0

    @property
    def total_completed(self) -> int:
        return sum(t.completed for t in self.tenants.values())

    @property
    def total_failed(self) -> int:
        return sum(t.failed for t in self.tenants.values())

    @property
    def total_recovered(self) -> int:
        return sum(t.recovered for t in self.tenants.values())

    @property
    def success_rate(self) -> float:
        """Fraction of completed commands that returned correct data."""
        done = self.total_completed
        return (done - self.total_failed) / done if done else 1.0

    @property
    def goodput_gbps(self) -> float:
        """Throughput counting only successfully served bytes."""
        ok_bytes = sum(
            t.bytes_in for t in self.tenants.values() if t.completed
        ) - sum(
            # Failed commands moved no useful data; approximate their share
            # by the tenant's mean command size.
            (t.bytes_in / t.completed) * t.failed
            for t in self.tenants.values()
            if t.completed
        )
        return ok_bytes / self.horizon_ns if self.horizon_ns > 0 else 0.0

    @property
    def reconstruction_p99_ns(self) -> float:
        if not self.reconstruction_ns:
            return 0.0
        return percentile(self.reconstruction_ns, 99.0)

    @property
    def total_dropped(self) -> int:
        return sum(t.dropped for t in self.tenants.values())

    @property
    def total_bytes(self) -> int:
        return sum(t.bytes_in for t in self.tenants.values())

    @property
    def throughput_gbps(self) -> float:
        return self.total_bytes / self.horizon_ns if self.horizon_ns > 0 else 0.0

    def slo_violations(self, p99_slo_ns: Dict[str, float]) -> Dict[str, bool]:
        """Map tenant -> True where the tenant's p99 SLO was violated."""
        return {
            name: not self.tenants[name].meets_slo(slo)
            for name, slo in p99_slo_ns.items()
            if name in self.tenants
        }

    def fingerprint(self) -> Tuple:
        """A deterministic digest of the run, for same-seed-same-result tests."""
        return tuple(
            (
                name,
                t.submitted,
                t.completed,
                t.dropped,
                t.bytes_in,
                t.bytes_out,
                round(t.mean_latency_ns, 6),
                round(t.p99_latency_ns, 6),
                t.failed,
                t.recovered,
                t.timeouts,
                t.cmd_retries,
            )
            for name, t in self.tenants.items()
        ) + (
            round(self.horizon_ns, 6),
            tuple(sorted(self.faults.items())),
            round(sum(self.reconstruction_ns), 6),
        )

    def render(self) -> str:
        """Human-readable per-tenant table plus device utilisation."""
        lines = [
            f"serve: config={self.config_name} policy={self.policy} seed={self.seed}",
            f"duration {self.duration_ns / 1e3:.0f} us, horizon {self.horizon_ns / 1e3:.0f} us, "
            f"aggregate {self.throughput_gbps:.2f} GB/s, "
            f"{self.total_completed} completed / {self.total_dropped} dropped",
            "",
            f"{'tenant':<10} {'wt':>4} {'kind':<6} {'done':>6} {'drop':>5} "
            f"{'p50 us':>8} {'p95 us':>8} {'p99 us':>8} {'mean us':>8} {'GB/s':>6} {'maxQD':>5}",
        ]
        for name, t in self.tenants.items():
            lines.append(
                f"{name:<10} {t.weight:>4.1f} {t.kind:<6} {t.completed:>6d} {t.dropped:>5d} "
                f"{t.p50_latency_ns / 1e3:>8.1f} {t.p95_latency_ns / 1e3:>8.1f} "
                f"{t.p99_latency_ns / 1e3:>8.1f} {t.mean_latency_ns / 1e3:>8.1f} "
                f"{t.throughput_bytes_per_ns(self.horizon_ns):>6.2f} {t.max_queue_depth:>5d}"
            )
        cores = " ".join(f"{u:.0%}" for u in self.core_utilisation)
        channels = " ".join(f"{u:.0%}" for u in self.channel_utilisation)
        lines += ["", f"core util    : {cores}", f"channel util : {channels}"]
        if self.faults or self.total_failed or self.total_recovered:
            lines += [
                "",
                f"recovery     : {self.success_rate:.2%} command success, "
                f"{self.total_recovered} recovered, {self.total_failed} failed, "
                f"goodput {self.goodput_gbps:.2f} GB/s",
            ]
            if self.reconstruction_ns:
                lines.append(
                    f"reconstruct  : {len(self.reconstruction_ns)} rebuilds, "
                    f"p99 {self.reconstruction_p99_ns / 1e3:.1f} us"
                )
            for name, count in sorted(self.faults.items()):
                lines.append(f"  {name:<26}: {count}")
        return "\n".join(lines)


def build_tenant_metrics(
    specs,
    weights: Optional[List[float]] = None,
    registry: Optional[CounterRegistry] = None,
) -> Dict[str, TenantMetrics]:
    """One metrics bucket per tenant spec, in declaration order.

    With a ``registry`` the latency/wait/queue-depth histograms are
    allocated through it (named ``serve.<tenant>.*``), so the serve-layer
    tallies show up in the device-wide telemetry snapshot alongside the
    flash and host counters.
    """
    if weights is None:
        weights = [s.weight for s in specs]
    out: Dict[str, TenantMetrics] = {}
    for s, w in zip(specs, weights):
        if registry is not None:
            hist = lambda leaf: registry.histogram(f"serve.{s.name}.{leaf}")  # noqa: E731
            out[s.name] = TenantMetrics(
                tenant=s.name,
                weight=w,
                kind=s.kind,
                latency=hist("latency_ns"),
                wait=hist("wait_ns"),
                queue_depth=hist("queue_depth"),
            )
        else:
            out[s.name] = TenantMetrics(tenant=s.name, weight=w, kind=s.kind)
    return out
