"""TPC-H schema: the eight tables, their columns, and scaling rules.

Row widths are the serialized text widths ('|'-delimited, as dbgen emits
and as the PSF offload parses); they drive the bytes-scanned terms of the
cost model. Dates are day numbers since 1992-01-01 (the 7-year TPC-H
window), matching the kernels' tuple encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import AnalyticsError

#: Days covered by the TPC-H date domain (1992-01-01 .. 1998-12-31).
DATE_DAYS = 2556
EPOCH_YEAR = 1992


def date_to_day(year: int, month: int, day: int) -> int:
    """Days since 1992-01-01 (30-day months, 360-day years — the simplified
    calendar used consistently by the generator, queries, and kernels)."""
    if not (EPOCH_YEAR <= year <= 1998 and 1 <= month <= 12 and 1 <= day <= 30):
        raise AnalyticsError(f"date {year}-{month}-{day} outside simplified TPC-H domain")
    return (year - EPOCH_YEAR) * 360 + (month - 1) * 30 + (day - 1)


@dataclass(frozen=True)
class TableSchema:
    """One TPC-H table: column names and a rows-per-scale-factor rule."""

    name: str
    columns: Tuple[str, ...]
    rows_per_sf: int  # rows at SF=1 (0 means fixed-size table)
    fixed_rows: int = 0
    avg_row_text_bytes: int = 100

    def rows_at(self, scale_factor: float) -> int:
        if self.fixed_rows:
            return self.fixed_rows
        return max(1, int(self.rows_per_sf * scale_factor))

    def bytes_at(self, scale_factor: float) -> int:
        return self.rows_at(scale_factor) * self.avg_row_text_bytes


SCHEMA: Dict[str, TableSchema] = {
    "region": TableSchema(
        "region", ("r_regionkey", "r_name", "r_comment"), 0, fixed_rows=5, avg_row_text_bytes=80
    ),
    "nation": TableSchema(
        "nation",
        ("n_nationkey", "n_name", "n_regionkey", "n_comment"),
        0,
        fixed_rows=25,
        avg_row_text_bytes=90,
    ),
    "supplier": TableSchema(
        "supplier",
        (
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ),
        10_000,
        avg_row_text_bytes=140,
    ),
    "customer": TableSchema(
        "customer",
        (
            "c_custkey",
            "c_name",
            "c_address",
            "c_nationkey",
            "c_phone",
            "c_acctbal",
            "c_mktsegment",
            "c_comment",
        ),
        150_000,
        avg_row_text_bytes=160,
    ),
    "part": TableSchema(
        "part",
        (
            "p_partkey",
            "p_name",
            "p_mfgr",
            "p_brand",
            "p_type",
            "p_size",
            "p_container",
            "p_retailprice",
            "p_comment",
        ),
        200_000,
        avg_row_text_bytes=150,
    ),
    "partsupp": TableSchema(
        "partsupp",
        ("ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"),
        800_000,
        avg_row_text_bytes=140,
    ),
    "orders": TableSchema(
        "orders",
        (
            "o_orderkey",
            "o_custkey",
            "o_orderstatus",
            "o_totalprice",
            "o_orderdate",
            "o_orderpriority",
            "o_clerk",
            "o_shippriority",
            "o_comment",
        ),
        1_500_000,
        avg_row_text_bytes=120,
    ),
    "lineitem": TableSchema(
        "lineitem",
        (
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_linenumber",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
            "l_shipinstruct",
            "l_shipmode",
            "l_comment",
        ),
        6_000_000,
        avg_row_text_bytes=130,
    ),
}

TABLE_NAMES = tuple(SCHEMA)


def table_schema(name: str) -> TableSchema:
    try:
        return SCHEMA[name]
    except KeyError:
        raise AnalyticsError(f"unknown table {name!r}; known: {TABLE_NAMES}") from None
