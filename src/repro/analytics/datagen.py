"""dbgen-lite: deterministic TPC-H data with referentially intact keys.

Generates all eight tables at a given scale factor with the value domains
the queries rely on (market segments, order priorities, ship modes, brand
and type vocabularies, the 7-year date window). Values are drawn from a
seeded RNG, so runs are reproducible; monetary values are integer cents.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.analytics.relalg import Table
from repro.analytics.schema import DATE_DAYS, SCHEMA, date_to_day
from repro.errors import AnalyticsError

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
MKT_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
SHIP_INSTRUCTS = ["COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
CONTAINERS = [f"{a} {b}" for a in ("SM", "MED", "LG", "JUMBO", "WRAP")
              for b in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")]
_WORDS = ("special", "pending", "unusual", "express", "furious", "sly", "careful",
          "blithe", "quick", "deposits", "packages", "foxes", "accounts", "requests")


def _comment(rng: random.Random, words: int = 4) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def _phone(rng: random.Random, nationkey: int) -> str:
    return f"{nationkey + 10}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"


def generate_database(scale_factor: float = 0.01, seed: int = 7) -> Dict[str, Table]:
    """Generate all eight tables; keys are referentially consistent."""
    if scale_factor <= 0:
        raise AnalyticsError("scale factor must be positive")
    rng = random.Random(seed)
    db: Dict[str, Table] = {}

    db["region"] = Table(
        "region",
        {
            "r_regionkey": list(range(5)),
            "r_name": list(REGIONS),
            "r_comment": [_comment(rng) for _ in range(5)],
        },
    )
    db["nation"] = Table(
        "nation",
        {
            "n_nationkey": list(range(25)),
            "n_name": [n for n, _ in NATIONS],
            "n_regionkey": [r for _, r in NATIONS],
            "n_comment": [_comment(rng) for _ in range(25)],
        },
    )

    n_supp = SCHEMA["supplier"].rows_at(scale_factor)
    db["supplier"] = Table(
        "supplier",
        {
            "s_suppkey": list(range(1, n_supp + 1)),
            "s_name": [f"Supplier#{i:09d}" for i in range(1, n_supp + 1)],
            "s_address": [_comment(rng, 2) for _ in range(n_supp)],
            "s_nationkey": [rng.randrange(25) for _ in range(n_supp)],
            "s_phone": [_phone(rng, rng.randrange(25)) for _ in range(n_supp)],
            "s_acctbal": [rng.randint(-99_999, 999_999) for _ in range(n_supp)],
            "s_comment": [
                (_comment(rng) + (" Customer Complaints" if rng.random() < 0.01 else ""))
                for _ in range(n_supp)
            ],
        },
    )

    n_cust = SCHEMA["customer"].rows_at(scale_factor)
    db["customer"] = Table(
        "customer",
        {
            "c_custkey": list(range(1, n_cust + 1)),
            "c_name": [f"Customer#{i:09d}" for i in range(1, n_cust + 1)],
            "c_address": [_comment(rng, 2) for _ in range(n_cust)],
            "c_nationkey": [rng.randrange(25) for _ in range(n_cust)],
            "c_phone": [_phone(rng, rng.randrange(25)) for _ in range(n_cust)],
            "c_acctbal": [rng.randint(-99_999, 999_999) for _ in range(n_cust)],
            "c_mktsegment": [rng.choice(MKT_SEGMENTS) for _ in range(n_cust)],
            "c_comment": [_comment(rng) for _ in range(n_cust)],
        },
    )

    n_part = SCHEMA["part"].rows_at(scale_factor)
    part_types = [
        f"{rng.choice(TYPE_SYLL1)} {rng.choice(TYPE_SYLL2)} {rng.choice(TYPE_SYLL3)}"
        for _ in range(n_part)
    ]
    db["part"] = Table(
        "part",
        {
            "p_partkey": list(range(1, n_part + 1)),
            "p_name": [
                " ".join(rng.sample(("lace", "green", "ivory", "navy", "forest",
                                     "chocolate", "metallic", "almond"), 3))
                for _ in range(n_part)
            ],
            "p_mfgr": [f"Manufacturer#{rng.randint(1, 5)}" for _ in range(n_part)],
            "p_brand": [rng.choice(BRANDS) for _ in range(n_part)],
            "p_type": part_types,
            "p_size": [rng.randint(1, 50) for _ in range(n_part)],
            "p_container": [rng.choice(CONTAINERS) for _ in range(n_part)],
            "p_retailprice": [rng.randint(90_000, 210_000) for _ in range(n_part)],
            "p_comment": [_comment(rng, 2) for _ in range(n_part)],
        },
    )

    # partsupp: 4 suppliers per part.
    ps_part: List[int] = []
    ps_supp: List[int] = []
    for pk in range(1, n_part + 1):
        for j in range(4):
            ps_part.append(pk)
            ps_supp.append((pk + j * (n_supp // 4 + 1)) % n_supp + 1)
    n_ps = len(ps_part)
    db["partsupp"] = Table(
        "partsupp",
        {
            "ps_partkey": ps_part,
            "ps_suppkey": ps_supp,
            "ps_availqty": [rng.randint(1, 9999) for _ in range(n_ps)],
            "ps_supplycost": [rng.randint(100, 100_000) for _ in range(n_ps)],
            "ps_comment": [_comment(rng) for _ in range(n_ps)],
        },
    )

    n_orders = SCHEMA["orders"].rows_at(scale_factor)
    order_dates = [rng.randrange(DATE_DAYS - 151) for _ in range(n_orders)]
    db["orders"] = Table(
        "orders",
        {
            "o_orderkey": list(range(1, n_orders + 1)),
            "o_custkey": [rng.randint(1, n_cust) for _ in range(n_orders)],
            "o_orderstatus": [rng.choice("OFP") for _ in range(n_orders)],
            "o_totalprice": [rng.randint(100_000, 50_000_000) for _ in range(n_orders)],
            "o_orderdate": order_dates,
            "o_orderpriority": [rng.choice(ORDER_PRIORITIES) for _ in range(n_orders)],
            "o_clerk": [f"Clerk#{rng.randint(1, 1000):09d}" for _ in range(n_orders)],
            "o_shippriority": [0] * n_orders,
            "o_comment": [_comment(rng) for _ in range(n_orders)],
        },
    )

    # lineitem: 1..7 lines per order (avg 4).
    cols: Dict[str, List] = {name: [] for name in SCHEMA["lineitem"].columns}
    for okey, odate in zip(db["orders"].column("o_orderkey"), order_dates):
        for line in range(1, rng.randint(1, 7) + 1):
            shipdate = min(odate + rng.randint(1, 121), DATE_DAYS - 31)
            commitdate = min(odate + rng.randint(30, 90), DATE_DAYS - 1)
            receiptdate = min(shipdate + rng.randint(1, 30), DATE_DAYS - 1)
            quantity = rng.randint(1, 50)
            cols["l_orderkey"].append(okey)
            cols["l_partkey"].append(rng.randint(1, n_part))
            cols["l_suppkey"].append(rng.randint(1, n_supp))
            cols["l_linenumber"].append(line)
            cols["l_quantity"].append(quantity)
            cols["l_extendedprice"].append(quantity * rng.randint(90_000, 210_000) // 100)
            cols["l_discount"].append(rng.randint(0, 10))
            cols["l_tax"].append(rng.randint(0, 8))
            cols["l_returnflag"].append(
                "R" if receiptdate <= date_to_day(1995, 6, 17) and rng.random() < 0.5
                else rng.choice("AN")
            )
            cols["l_linestatus"].append("F" if shipdate <= date_to_day(1995, 6, 17) else "O")
            cols["l_shipdate"].append(shipdate)
            cols["l_commitdate"].append(commitdate)
            cols["l_receiptdate"].append(receiptdate)
            cols["l_shipinstruct"].append(rng.choice(SHIP_INSTRUCTS))
            cols["l_shipmode"].append(rng.choice(SHIP_MODES))
            cols["l_comment"].append(_comment(rng, 2))
    db["lineitem"] = Table("lineitem", cols)
    return db
