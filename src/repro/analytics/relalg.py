"""Mini relational-algebra engine: columnar tables + the operators the
22 TPC-H queries need (scan/filter/project/hash-join/group-aggregate/sort).

Every operator records how many rows and bytes it touched in a shared
:class:`ExecutionStats`, which is what the host cost model prices when
estimating query CPU time (Figure 15).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AnalyticsError


@dataclass
class ExecutionStats:
    """Operator-level work counters for one query execution."""

    rows_scanned: int = 0
    rows_filtered_in: int = 0
    rows_joined: int = 0
    rows_aggregated: int = 0
    rows_sorted: int = 0
    build_rows: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_filtered_in += other.rows_filtered_in
        self.rows_joined += other.rows_joined
        self.rows_aggregated += other.rows_aggregated
        self.rows_sorted += other.rows_sorted
        self.build_rows += other.build_rows


class Table:
    """A columnar table: named columns of equal length."""

    def __init__(self, name: str, columns: Dict[str, List[Any]]) -> None:
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise AnalyticsError(f"table {name}: ragged columns {lengths}")
        self.name = name
        self.columns = columns
        self.nrows = lengths.pop() if lengths else 0
        self.stats = ExecutionStats()

    # -- basics ------------------------------------------------------------------

    def column(self, name: str) -> List[Any]:
        try:
            return self.columns[name]
        except KeyError:
            raise AnalyticsError(
                f"table {self.name} has no column {name!r}; has {tuple(self.columns)}"
            ) from None

    def row(self, i: int) -> Dict[str, Any]:
        return {name: col[i] for name, col in self.columns.items()}

    def iter_rows(self) -> Iterable[Dict[str, Any]]:
        names = list(self.columns)
        cols = [self.columns[n] for n in names]
        for values in zip(*cols):
            yield dict(zip(names, values))

    def _derive(self, name: str, columns: Dict[str, List[Any]]) -> "Table":
        out = Table(name, columns)
        out.stats.merge(self.stats)
        return out

    # -- operators -----------------------------------------------------------------

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Table":
        """Row-wise selection; predicate sees a dict of column values."""
        keep: List[int] = []
        names = list(self.columns)
        cols = [self.columns[n] for n in names]
        for i, values in enumerate(zip(*cols)):
            if predicate(dict(zip(names, values))):
                keep.append(i)
        out_cols = {n: [self.columns[n][i] for i in keep] for n in self.columns}
        out = self._derive(self.name, out_cols)
        out.stats.rows_scanned += self.nrows
        out.stats.rows_filtered_in += len(keep)
        return out

    def filter_eq(self, column: str, value: Any) -> "Table":
        return self.filter(lambda r: r[column] == value)

    def project(self, columns: Sequence[str]) -> "Table":
        out = self._derive(self.name, {c: list(self.column(c)) for c in columns})
        out.stats.rows_scanned += self.nrows
        return out

    def extend(self, name: str, fn: Callable[[Dict[str, Any]], Any]) -> "Table":
        """Add a computed column."""
        values = [fn(row) for row in self.iter_rows()]
        cols = {c: list(v) for c, v in self.columns.items()}
        cols[name] = values
        out = self._derive(self.name, cols)
        out.stats.rows_scanned += self.nrows
        return out

    def join(
        self,
        other: "Table",
        left_key: str,
        right_key: str,
        how: str = "inner",
    ) -> "Table":
        """Hash equi-join. Column name collisions keep the left value."""
        if how not in ("inner", "semi", "anti"):
            raise AnalyticsError(f"unsupported join type {how!r}")
        index: Dict[Any, List[int]] = defaultdict(list)
        for i, key in enumerate(other.column(right_key)):
            index[key].append(i)
        left_names = list(self.columns)
        right_names = (
            [] if how in ("semi", "anti") else [n for n in other.columns if n not in self.columns]
        )
        out_cols: Dict[str, List[Any]] = {n: [] for n in left_names + right_names}
        matched = 0
        for i, key in enumerate(self.column(left_key)):
            hits = index.get(key, [])
            if how == "semi":
                if hits:
                    matched += 1
                    for n in left_names:
                        out_cols[n].append(self.columns[n][i])
                continue
            if how == "anti":
                if not hits:
                    for n in left_names:
                        out_cols[n].append(self.columns[n][i])
                continue
            for j in hits:
                matched += 1
                for n in left_names:
                    out_cols[n].append(self.columns[n][i])
                for n in right_names:
                    out_cols[n].append(other.columns[n][j])
        out = Table(f"{self.name}*{other.name}", {n: out_cols[n] for n in out_cols})
        out.stats.merge(self.stats)
        out.stats.merge(other.stats)
        out.stats.build_rows += other.nrows
        out.stats.rows_joined += self.nrows + matched
        return out

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Dict[str, Tuple[str, Optional[Callable[[Dict[str, Any]], Any]]]],
    ) -> "Table":
        """Group + aggregate.

        ``aggregates`` maps output column -> (op, row_fn) with op in
        {sum, min, max, count, avg}; ``row_fn`` computes the aggregated
        expression per row (None means count).
        """
        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = defaultdict(list)
        for row in self.iter_rows():
            groups[tuple(row[k] for k in keys)].append(row)
        out_cols: Dict[str, List[Any]] = {k: [] for k in keys}
        for out_name in aggregates:
            out_cols[out_name] = []
        for key, rows in groups.items():
            for k, v in zip(keys, key):
                out_cols[k].append(v)
            for out_name, (op, fn) in aggregates.items():
                if op == "count":
                    out_cols[out_name].append(len(rows))
                    continue
                values = [fn(r) for r in rows]
                if op == "sum":
                    out_cols[out_name].append(sum(values))
                elif op == "min":
                    out_cols[out_name].append(min(values))
                elif op == "max":
                    out_cols[out_name].append(max(values))
                elif op == "avg":
                    out_cols[out_name].append(sum(values) / len(values))
                else:
                    raise AnalyticsError(f"unknown aggregate op {op!r}")
        out = self._derive(f"{self.name}#g", out_cols)
        out.stats.rows_aggregated += self.nrows
        return out

    def order_by(self, keys: Sequence[Tuple[str, bool]]) -> "Table":
        """Sort by [(column, descending)] pairs."""
        indices = list(range(self.nrows))
        for column, descending in reversed(list(keys)):
            col = self.column(column)
            indices.sort(key=lambda i: col[i], reverse=descending)
        out_cols = {n: [col[i] for i in indices] for n, col in self.columns.items()}
        out = self._derive(self.name, out_cols)
        out.stats.rows_sorted += self.nrows
        return out

    def limit(self, n: int) -> "Table":
        return self._derive(self.name, {c: col[:n] for c, col in self.columns.items()})

    def distinct(self, columns: Sequence[str]) -> "Table":
        seen = set()
        keep: List[int] = []
        cols = [self.column(c) for c in columns]
        for i in range(self.nrows):
            key = tuple(col[i] for col in cols)
            if key not in seen:
                seen.add(key)
                keep.append(i)
        out = self._derive(self.name, {c: [col[i] for i in keep] for c, col in self.columns.items()})
        out.stats.rows_aggregated += self.nrows
        return out

    def __len__(self) -> int:
        return self.nrows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, rows={self.nrows}, cols={tuple(self.columns)})"
