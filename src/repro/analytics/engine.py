"""End-to-end analytics engine: host + computational SSD (Figure 15).

For every TPC-H query the engine produces latencies for:

* **pure-CPU** (disaggregated storage): every scanned table crosses the
  PCIe link as text and the host parses and executes everything;
* **offloaded** on a given computational-SSD configuration: the lineitem
  scan's Parse/Select/Filter runs inside the device at that configuration's
  measured PSF throughput, only the projected+filtered binary columns cross
  the link, and the host executes the remaining operators.

Operator work is measured by actually running the query on generated data
at a small scale factor, then scaled linearly to the target SF (the paper
uses SF 10). Device PSF throughput comes from the SSD simulator
(:func:`repro.ssd.simulate_offload` of the ``psf`` kernel), passed in per
configuration so this module stays independent of simulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analytics.cost import CostSource, HostCostModel, StaticCostSource
from repro.analytics.datagen import generate_database
from repro.analytics.queries import query_meta, query_numbers, run_query
from repro.analytics.relalg import ExecutionStats, Table
from repro.analytics.schema import SCHEMA
from repro.errors import AnalyticsError

#: PCIe Gen4 x4, one direction.
LINK_BYTES_PER_NS = 8.0
#: Binary output width of the pushed projection, relative to text (parsed
#: u32 fields are denser than their decimal text form).
BINARY_DENSITY = 0.6
#: Width fraction kept by the pushed projection on non-lineitem tables
#: (queries typically need about half of each dimension table's columns).
OTHER_TABLE_COL_FRACTION = 0.5


@dataclass
class QueryLatency:
    """Latency decomposition for one query on one path."""

    query: int
    total_ns: float
    storage_ns: float  # device compute or link transfer of the scan
    host_parse_ns: float
    host_ops_ns: float

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6


@dataclass
class _QueryProfile:
    stats: ExecutionStats
    result_rows: int


class AnalyticsEngine:
    """Measured-then-scaled TPC-H execution with optional PSF pushdown."""

    def __init__(
        self,
        gen_scale_factor: float = 0.005,
        target_scale_factor: float = 10.0,
        cost_model: Optional[HostCostModel] = None,
        seed: int = 7,
        cost_source: Optional[CostSource] = None,
    ) -> None:
        if target_scale_factor < gen_scale_factor:
            raise AnalyticsError("target SF must be >= generation SF")
        self.gen_sf = gen_scale_factor
        self.target_sf = target_scale_factor
        self.scale_ratio = target_scale_factor / gen_scale_factor
        self.cost = cost_model or HostCostModel()
        #: All host-side pricing flows through one :class:`CostSource`; the
        #: default wraps ``cost_model`` in the calibrated static fallback so
        #: figure-15 numbers are unchanged, and callers can swap in a
        #: telemetry-backed source without touching the latency models.
        self.source: CostSource = cost_source or StaticCostSource(host=self.cost)
        self.db: Dict[str, Table] = generate_database(gen_scale_factor, seed=seed)
        self._profiles: Dict[int, _QueryProfile] = {}

    # -- measurement --------------------------------------------------------------

    def profile(self, number: int) -> _QueryProfile:
        """Run the query once on generated data; cache its operator stats."""
        if number not in self._profiles:
            result = run_query(self.db, number)
            self._profiles[number] = _QueryProfile(stats=result.stats, result_rows=result.nrows)
        return self._profiles[number]

    def scanned_text_bytes(self, number: int, table: Optional[str] = None) -> float:
        """Text bytes of the query's scanned tables at the target SF."""
        meta = query_meta(number)
        tables = [table] if table else list(meta.tables)
        return float(
            sum(SCHEMA[t].bytes_at(self.target_sf) for t in tables if t in meta.tables)
        )

    # -- latency models ---------------------------------------------------------------

    def pure_cpu_latency(self, number: int) -> QueryLatency:
        """Disaggregated storage: ship text, parse and execute on host."""
        profile = self.profile(number)
        scan_bytes = self.scanned_text_bytes(number)
        transfer = scan_bytes / LINK_BYTES_PER_NS
        parse = self.source.parse_text_ns(scan_bytes)
        ops = self.source.relational_ns(profile.stats, self.scale_ratio)
        # Transfer overlaps compute; parsing + operators serialise on the host.
        total = max(transfer, parse + ops)
        return QueryLatency(number, total, transfer, parse, ops)

    def offloaded_latency(self, number: int, device_psf_bytes_per_ns: float) -> QueryLatency:
        """PSF pushed into the computational SSD for every scanned table.

        The datasource API pushes the parse + projection (+ filter where the
        query has a device-evaluable predicate, i.e. on lineitem) down per
        table; the host only ingests reduced binary columns and runs the
        remaining operators.
        """
        if device_psf_bytes_per_ns <= 0:
            raise AnalyticsError("device PSF throughput must be positive")
        profile = self.profile(number)
        meta = query_meta(number)
        ops = self.source.relational_ns(profile.stats, self.scale_ratio)
        all_bytes = self.scanned_text_bytes(number)
        lineitem_bytes = (
            self.scanned_text_bytes(number, "lineitem") if meta.uses_lineitem else 0.0
        )
        other_bytes = all_bytes - lineitem_bytes
        device = all_bytes / device_psf_bytes_per_ns
        reduced = other_bytes * OTHER_TABLE_COL_FRACTION * BINARY_DENSITY
        reduced += (
            lineitem_bytes
            * meta.lineitem_row_selectivity
            * meta.lineitem_col_fraction
            * BINARY_DENSITY
        )
        transfer = reduced / LINK_BYTES_PER_NS
        ingest = self.source.ingest_binary_ns(reduced)
        storage = max(device, transfer)
        total = storage + ingest + ops
        return QueryLatency(number, total, storage, 0.0, ingest + ops)

    # -- sweeps -----------------------------------------------------------------------

    def figure15(
        self, psf_rates: Dict[str, float], queries: Optional[List[int]] = None
    ) -> Dict[str, Dict[int, QueryLatency]]:
        """Per-query end-to-end latencies: pure CPU + each configuration.

        ``psf_rates`` maps configuration name -> device PSF throughput in
        bytes/ns (from the SSD simulator).
        """
        numbers = queries or query_numbers()
        out: Dict[str, Dict[int, QueryLatency]] = {"PureCPU": {}}
        for n in numbers:
            out["PureCPU"][n] = self.pure_cpu_latency(n)
        for config, rate in psf_rates.items():
            out[config] = {n: self.offloaded_latency(n, rate) for n in numbers}
        return out
