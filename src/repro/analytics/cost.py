"""Host-side cost model for the end-to-end evaluation (Figure 15).

The paper's host stack is SparkSQL reading TPC-H text through the
datasource API; its scan path (row materialisation, type coercion, JVM
overheads) is far slower than a hand-tuned C parser, which is precisely why
pushing Parse/Select/Filter into the SSD pays off. The constants below are
calibrated to that regime:

* text scan+parse ~0.30 GB/s aggregate on the 4-core/8-thread host,
* binary columnar ingest an order of magnitude faster,
* per-row costs for joins/aggregation/sort on materialised rows.

Relational-operator work is *measured* (the mini engine counts rows per
operator while actually executing the query) and scaled linearly to the
target scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.relalg import ExecutionStats


@dataclass(frozen=True)
class HostCostModel:
    """Per-unit costs of the host analytics stack (nanoseconds)."""

    text_parse_ns_per_byte: float = 1.0 / 0.30  # SparkSQL-style text scan
    binary_ingest_ns_per_byte: float = 1.0 / 4.0  # columnar binary ingest
    filter_ns_per_row: float = 12.0
    join_probe_ns_per_row: float = 28.0
    join_build_ns_per_row: float = 45.0
    aggregate_ns_per_row: float = 32.0
    sort_ns_per_row: float = 130.0

    def parse_text_ns(self, nbytes: float) -> float:
        return nbytes * self.text_parse_ns_per_byte

    def ingest_binary_ns(self, nbytes: float) -> float:
        return nbytes * self.binary_ingest_ns_per_byte

    def relational_ns(self, stats: ExecutionStats, scale_ratio: float = 1.0) -> float:
        """Cost of the measured operator work, scaled to the target SF."""
        raw = (
            stats.rows_filtered_in * self.filter_ns_per_row
            + stats.rows_joined * self.join_probe_ns_per_row
            + stats.build_rows * self.join_build_ns_per_row
            + stats.rows_aggregated * self.aggregate_ns_per_row
            + stats.rows_sorted * self.sort_ns_per_row
        )
        return raw * scale_ratio
