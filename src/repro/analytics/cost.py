"""Cost models for host-vs-device placement of analytic scans.

The paper's host stack is SparkSQL reading TPC-H text through the
datasource API; its scan path (row materialisation, type coercion, JVM
overheads) is far slower than a hand-tuned C parser, which is precisely why
pushing Parse/Select/Filter into the SSD pays off. The constants in
:class:`HostCostModel` are calibrated to that regime:

* text scan+parse ~0.30 GB/s aggregate on the 4-core/8-thread host,
* binary columnar ingest an order of magnitude faster,
* per-row costs for joins/aggregation/sort on materialised rows.

Relational-operator work is *measured* (the mini engine counts rows per
operator while actually executing the query) and scaled linearly to the
target scale factor.

Costing is exposed behind one :class:`CostSource` interface so callers
never care whether an estimate came from calibrated constants or from live
telemetry. :class:`StaticCostSource` is the calibrated fallback: its device
rates are *sampled from the simulator itself* (``device.sample_kernel``)
rather than hand-maintained constants, which removes the silent drift
between this module and the sim-kernel timings. The live-telemetry source
(:class:`repro.sql.cost.LiveCostSource`) subclasses it and adds queue/core/
GC pressure terms observed on the shared simulation kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.analytics.relalg import ExecutionStats
from repro.errors import AnalyticsError

#: PCIe Gen4 x4, one direction (shared with the engine's link model).
LINK_BYTES_PER_NS = 8.0


@dataclass(frozen=True)
class HostCostModel:
    """Per-unit costs of the host analytics stack (nanoseconds)."""

    text_parse_ns_per_byte: float = 1.0 / 0.30  # SparkSQL-style text scan
    binary_ingest_ns_per_byte: float = 1.0 / 4.0  # columnar binary ingest
    filter_ns_per_row: float = 12.0
    join_probe_ns_per_row: float = 28.0
    join_build_ns_per_row: float = 45.0
    aggregate_ns_per_row: float = 32.0
    sort_ns_per_row: float = 130.0

    def parse_text_ns(self, nbytes: float) -> float:
        return nbytes * self.text_parse_ns_per_byte

    def ingest_binary_ns(self, nbytes: float) -> float:
        return nbytes * self.binary_ingest_ns_per_byte

    def relational_ns(self, stats: ExecutionStats, scale_ratio: float = 1.0) -> float:
        """Cost of the measured operator work, scaled to the target SF."""
        raw = (
            stats.rows_filtered_in * self.filter_ns_per_row
            + stats.rows_joined * self.join_probe_ns_per_row
            + stats.build_rows * self.join_build_ns_per_row
            + stats.rows_aggregated * self.aggregate_ns_per_row
            + stats.rows_sorted * self.sort_ns_per_row
        )
        return raw * scale_ratio


class CostSource:
    """One API for pricing a scan on the host or on the device.

    Implementations answer two placement questions — ``host_scan_ns`` and
    ``device_scan_ns`` — plus the host-side primitives the engine composes
    (text parse, binary ingest, measured relational-operator work). ``at_ns``
    is the simulated instant of the decision; static sources ignore it,
    telemetry-backed sources price the queueing state at that moment.
    """

    name = "abstract"

    def host_scan_ns(self, text_bytes: float, at_ns: float = 0.0) -> float:
        raise NotImplementedError

    def device_scan_ns(
        self, pages: int, kernel: str = "psf", at_ns: float = 0.0
    ) -> float:
        raise NotImplementedError

    def scan_selectivity(self, table, predicate, at_ns: float = 0.0) -> float:
        """Expected fraction of rows surviving a pushed predicate.

        Sources without row data answer 1.0 — the conservative bound where
        the column fraction alone caps a device scan's output. The
        telemetry-backed source (:class:`repro.sql.cost.LiveCostSource`)
        overrides this with a sampled-predicate estimate.
        """
        return 1.0

    def parse_text_ns(self, nbytes: float) -> float:
        raise NotImplementedError

    def ingest_binary_ns(self, nbytes: float) -> float:
        raise NotImplementedError

    def relational_ns(self, stats: ExecutionStats, scale_ratio: float = 1.0) -> float:
        raise NotImplementedError


class StaticCostSource(CostSource):
    """Calibrated-constants fallback: host model + sampled device rates.

    ``device_ns_per_page`` maps kernel name -> sampled core-nanoseconds to
    stream one flash page; :meth:`calibrate` fills it from a live device so
    the numbers are always the simulator's own, never a stale copy.
    """

    name = "static"

    def __init__(
        self,
        host: Optional[HostCostModel] = None,
        device_ns_per_page: Optional[Dict[str, float]] = None,
        num_cores: int = 8,
        page_bytes: int = 4096,
        link_bytes_per_ns: float = LINK_BYTES_PER_NS,
    ) -> None:
        if num_cores <= 0:
            raise AnalyticsError("cost source needs a positive core count")
        self.host = host or HostCostModel()
        self.device_ns_per_page = dict(device_ns_per_page or {})
        self.num_cores = num_cores
        self.page_bytes = page_bytes
        self.link_bytes_per_ns = link_bytes_per_ns

    @classmethod
    def calibrate(
        cls,
        device,
        kernels: Iterable[str] = ("psf", "parse"),
        host: Optional[HostCostModel] = None,
    ) -> "StaticCostSource":
        """Sample each kernel's core phase on ``device`` and build a source.

        The sampling goes through ``device.sample_kernel``, so with the
        process-wide pricing memo enabled
        (:data:`repro.kernels.pricing.PRICING_CACHE`, via
        ``SimConfig(memoize_pricing=True)``) repeated calibrations of
        same-config devices — every device of a fleet, every policy arm
        of a comparison — price from one sampled run per kernel.  Rates
        are byte-identical either way; a changed device config re-samples
        because the memo key embeds the config digest.
        """
        from repro.kernels import get_kernel

        page = device.config.flash.page_bytes
        period_ns = device.config.core.clock_period_ns
        rates = {}
        for name in kernels:
            sample = device.sample_kernel(get_kernel(name))
            rates[name] = sample.cycles_per_byte * page * period_ns
        return cls(
            host=host,
            device_ns_per_page=rates,
            num_cores=device.config.num_cores,
            page_bytes=page,
        )

    # -- placement estimates ---------------------------------------------------

    def host_scan_ns(self, text_bytes: float, at_ns: float = 0.0) -> float:
        """Ship the text over the link and parse it on the host (overlapped)."""
        transfer = text_bytes / self.link_bytes_per_ns
        return max(transfer, self.host.parse_text_ns(text_bytes))

    def device_scan_ns(
        self, pages: int, kernel: str = "psf", at_ns: float = 0.0
    ) -> float:
        """Stream ``pages`` through the kernel across an idle core pool."""
        try:
            per_page = self.device_ns_per_page[kernel]
        except KeyError:
            raise AnalyticsError(
                f"no calibrated device rate for kernel {kernel!r}; "
                f"known: {sorted(self.device_ns_per_page)}"
            ) from None
        return pages * per_page / self.num_cores

    # -- host primitives (delegate to the calibrated host model) ---------------

    def parse_text_ns(self, nbytes: float) -> float:
        return self.host.parse_text_ns(nbytes)

    def ingest_binary_ns(self, nbytes: float) -> float:
        return self.host.ingest_binary_ns(nbytes)

    def relational_ns(self, stats: ExecutionStats, scale_ratio: float = 1.0) -> float:
        return self.host.relational_ns(stats, scale_ratio)
