"""TPC-H analytics substrate for the end-to-end evaluation (Figures 14/15).

A from-scratch mini data-analytics stack: schema-faithful TPC-H data
generation, a relational-algebra engine expressive enough for all 22
queries, a calibrated host cost model, and the datasource-style offload
split that pushes Parse/Select/Filter down into the computational SSD.
"""

from repro.analytics.schema import SCHEMA, TableSchema
from repro.analytics.datagen import generate_database
from repro.analytics.relalg import Table
from repro.analytics.queries import QUERIES, QueryMeta, query_meta, run_query
from repro.analytics.cost import CostSource, HostCostModel, StaticCostSource
from repro.analytics.engine import AnalyticsEngine, QueryLatency

__all__ = [
    "SCHEMA",
    "TableSchema",
    "generate_database",
    "Table",
    "QUERIES",
    "QueryMeta",
    "query_meta",
    "run_query",
    "CostSource",
    "HostCostModel",
    "StaticCostSource",
    "AnalyticsEngine",
    "QueryLatency",
]
