"""The 22 TPC-H queries over the mini relational-algebra engine.

Each query is a function ``db -> Table`` written against
:class:`~repro.analytics.relalg.Table`, semantically faithful to the TPC-H
specification (with the simplified 360-day calendar of the generator).
``QueryMeta`` carries what the offload engine needs: which tables are
scanned and how much of ``lineitem`` survives the pushed-down
Parse/Select/Filter pipeline (row selectivity x column fraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.analytics.relalg import Table
from repro.analytics.schema import date_to_day
from repro.errors import AnalyticsError


def _rev(row) -> float:
    """Revenue: extendedprice * (1 - discount); discount is in percent."""
    return row["l_extendedprice"] * (100 - row["l_discount"]) / 100.0


def _year(day: int) -> int:
    return 1992 + day // 360


@dataclass(frozen=True)
class QueryMeta:
    """Offload-relevant shape of one query."""

    number: int
    tables: Tuple[str, ...]
    lineitem_row_selectivity: float = 1.0  # rows surviving the pushed filter
    lineitem_col_fraction: float = 1.0  # width kept by the pushed select

    @property
    def uses_lineitem(self) -> bool:
        return "lineitem" in self.tables


# ---------------------------------------------------------------------------


def q1(db) -> Table:
    """Pricing summary report: aggregates over nearly all of lineitem."""
    cutoff = date_to_day(1998, 9, 2)
    li = db["lineitem"].filter(lambda r: r["l_shipdate"] <= cutoff)
    return li.group_by(
        ["l_returnflag", "l_linestatus"],
        {
            "sum_qty": ("sum", lambda r: r["l_quantity"]),
            "sum_base_price": ("sum", lambda r: r["l_extendedprice"]),
            "sum_disc_price": ("sum", _rev),
            "sum_charge": ("sum", lambda r: _rev(r) * (100 + r["l_tax"]) / 100.0),
            "avg_qty": ("avg", lambda r: r["l_quantity"]),
            "avg_price": ("avg", lambda r: r["l_extendedprice"]),
            "avg_disc": ("avg", lambda r: r["l_discount"]),
            "count_order": ("count", None),
        },
    ).order_by([("l_returnflag", False), ("l_linestatus", False)])


def q2(db) -> Table:
    """Minimum-cost supplier for brass parts of size 15 in Europe."""
    europe = db["region"].filter_eq("r_name", "EUROPE")
    nations = db["nation"].join(europe, "n_regionkey", "r_regionkey")
    suppliers = db["supplier"].join(nations, "s_nationkey", "n_nationkey")
    parts = db["part"].filter(lambda r: r["p_size"] == 15 and r["p_type"].endswith("BRASS"))
    ps = db["partsupp"].join(parts, "ps_partkey", "p_partkey")
    ps = ps.join(suppliers, "ps_suppkey", "s_suppkey")
    if not len(ps):
        return ps
    min_cost = ps.group_by(["ps_partkey"], {"min_cost": ("min", lambda r: r["ps_supplycost"])})
    joined = ps.join(min_cost, "ps_partkey", "ps_partkey").filter(
        lambda r: r["ps_supplycost"] == r["min_cost"]
    )
    return joined.project(
        ["s_acctbal", "s_name", "n_name", "ps_partkey", "p_mfgr", "s_address", "s_phone"]
    ).order_by([("s_acctbal", True), ("n_name", False), ("s_name", False)]).limit(100)


def q3(db) -> Table:
    """Top 10 unshipped orders by revenue for the BUILDING segment."""
    cutoff = date_to_day(1995, 3, 15)
    cust = db["customer"].filter_eq("c_mktsegment", "BUILDING")
    orders = db["orders"].filter(lambda r: r["o_orderdate"] < cutoff)
    orders = orders.join(cust, "o_custkey", "c_custkey", how="semi")
    li = db["lineitem"].filter(lambda r: r["l_shipdate"] > cutoff)
    joined = li.join(orders, "l_orderkey", "o_orderkey")
    return joined.group_by(
        ["l_orderkey", "o_orderdate", "o_shippriority"],
        {"revenue": ("sum", _rev)},
    ).order_by([("revenue", True), ("o_orderdate", False)]).limit(10)


def q4(db) -> Table:
    """Order-priority checking: late lineitems per priority class."""
    lo = date_to_day(1993, 7, 1)
    orders = db["orders"].filter(lambda r: lo <= r["o_orderdate"] < lo + 90)
    late = db["lineitem"].filter(lambda r: r["l_commitdate"] < r["l_receiptdate"])
    qualifying = orders.join(late, "o_orderkey", "l_orderkey", how="semi")
    return qualifying.group_by(
        ["o_orderpriority"], {"order_count": ("count", None)}
    ).order_by([("o_orderpriority", False)])


def q5(db) -> Table:
    """Local supplier volume: revenue by Asian nation, 1994."""
    lo = date_to_day(1994, 1, 1)
    asia = db["region"].filter_eq("r_name", "ASIA")
    nations = db["nation"].join(asia, "n_regionkey", "r_regionkey")
    cust = db["customer"].join(nations, "c_nationkey", "n_nationkey")
    orders = db["orders"].filter(lambda r: lo <= r["o_orderdate"] < lo + 360)
    orders = orders.join(cust, "o_custkey", "c_custkey")
    li = db["lineitem"].join(orders, "l_orderkey", "o_orderkey")
    supp = db["supplier"]
    joined = li.join(supp, "l_suppkey", "s_suppkey").filter(
        lambda r: r["s_nationkey"] == r["c_nationkey"]
    )
    return joined.group_by(["n_name"], {"revenue": ("sum", _rev)}).order_by(
        [("revenue", True)]
    )


def q6(db) -> Table:
    """Forecasting revenue change: the classic selective lineitem filter."""
    lo = date_to_day(1994, 1, 1)
    li = db["lineitem"].filter(
        lambda r: lo <= r["l_shipdate"] < lo + 360
        and 5 <= r["l_discount"] <= 7
        and r["l_quantity"] < 24
    )
    return li.group_by(
        [], {"revenue": ("sum", lambda r: r["l_extendedprice"] * r["l_discount"] / 100.0)}
    )


def q7(db) -> Table:
    """Volume shipping between France and Germany by year."""
    lo, hi = date_to_day(1995, 1, 1), date_to_day(1996, 12, 30)
    li = db["lineitem"].filter(lambda r: lo <= r["l_shipdate"] <= hi)
    li = li.join(db["supplier"], "l_suppkey", "s_suppkey")
    li = li.join(db["nation"].project(["n_nationkey", "n_name"]), "s_nationkey", "n_nationkey")
    li = li.extend("supp_nation", lambda r: r["n_name"])
    orders = db["orders"].join(db["customer"], "o_custkey", "c_custkey")
    cnation = db["nation"].project(["n_nationkey", "n_name"])
    cnation.columns["cn_nationkey"] = cnation.columns.pop("n_nationkey")
    cnation.columns["cust_nation"] = cnation.columns.pop("n_name")
    orders = orders.join(cnation, "c_nationkey", "cn_nationkey")
    joined = li.join(orders, "l_orderkey", "o_orderkey")
    joined = joined.filter(
        lambda r: (r["supp_nation"], r["cust_nation"]) in (
            ("FRANCE", "GERMANY"), ("GERMANY", "FRANCE"))
    )
    joined = joined.extend("l_year", lambda r: _year(r["l_shipdate"]))
    return joined.group_by(
        ["supp_nation", "cust_nation", "l_year"], {"revenue": ("sum", _rev)}
    ).order_by([("supp_nation", False), ("cust_nation", False), ("l_year", False)])


def q8(db) -> Table:
    """Brazil's market share of ECONOMY ANODIZED STEEL in America."""
    lo, hi = date_to_day(1995, 1, 1), date_to_day(1996, 12, 30)
    america = db["region"].filter_eq("r_name", "AMERICA")
    nations = db["nation"].join(america, "n_regionkey", "r_regionkey")
    cust = db["customer"].join(nations, "c_nationkey", "n_nationkey")
    orders = db["orders"].filter(lambda r: lo <= r["o_orderdate"] <= hi)
    orders = orders.join(cust, "o_custkey", "c_custkey", how="semi")
    parts = db["part"].filter_eq("p_type", "ECONOMY ANODIZED STEEL")
    li = db["lineitem"].join(parts, "l_partkey", "p_partkey", how="semi")
    li = li.join(orders.project(["o_orderkey", "o_orderdate"]), "l_orderkey", "o_orderkey")
    supp_nation = db["nation"].project(["n_nationkey", "n_name"])
    li = li.join(db["supplier"].project(["s_suppkey", "s_nationkey"]), "l_suppkey", "s_suppkey")
    li = li.join(supp_nation, "s_nationkey", "n_nationkey")
    li = li.extend("o_year", lambda r: _year(r["o_orderdate"]))
    li = li.extend("volume", _rev)
    li = li.extend("brazil", lambda r: _rev(r) if r["n_name"] == "BRAZIL" else 0.0)
    out = li.group_by(
        ["o_year"],
        {"total": ("sum", lambda r: r["volume"]), "brazil_vol": ("sum", lambda r: r["brazil"])},
    )
    out = out.extend("mkt_share", lambda r: r["brazil_vol"] / r["total"] if r["total"] else 0.0)
    return out.project(["o_year", "mkt_share"]).order_by([("o_year", False)])


def q9(db) -> Table:
    """Product-type profit for green parts, by nation and year."""
    parts = db["part"].filter(lambda r: "green" in r["p_name"])
    li = db["lineitem"].join(parts.project(["p_partkey"]), "l_partkey", "p_partkey", how="semi")
    li = li.join(db["supplier"].project(["s_suppkey", "s_nationkey"]), "l_suppkey", "s_suppkey")
    li = li.join(db["nation"].project(["n_nationkey", "n_name"]), "s_nationkey", "n_nationkey")
    ps = db["partsupp"].project(["ps_partkey", "ps_suppkey", "ps_supplycost"])
    ps = ps.extend("ps_key", lambda r: (r["ps_partkey"], r["ps_suppkey"]))
    li = li.extend("ps_key", lambda r: (r["l_partkey"], r["l_suppkey"]))
    li = li.join(ps.project(["ps_key", "ps_supplycost"]), "ps_key", "ps_key")
    orders = db["orders"].project(["o_orderkey", "o_orderdate"])
    li = li.join(orders, "l_orderkey", "o_orderkey")
    li = li.extend("o_year", lambda r: _year(r["o_orderdate"]))
    li = li.extend(
        "amount", lambda r: _rev(r) - r["ps_supplycost"] * r["l_quantity"] / 100.0
    )
    return li.group_by(
        ["n_name", "o_year"], {"sum_profit": ("sum", lambda r: r["amount"])}
    ).order_by([("n_name", False), ("o_year", True)])


def q10(db) -> Table:
    """Top 20 customers by returned-item revenue, Q4 1993."""
    lo = date_to_day(1993, 10, 1)
    orders = db["orders"].filter(lambda r: lo <= r["o_orderdate"] < lo + 90)
    li = db["lineitem"].filter_eq("l_returnflag", "R")
    joined = li.join(orders.project(["o_orderkey", "o_custkey"]), "l_orderkey", "o_orderkey")
    joined = joined.join(db["customer"], "o_custkey", "c_custkey")
    joined = joined.join(db["nation"].project(["n_nationkey", "n_name"]), "c_nationkey", "n_nationkey")
    return joined.group_by(
        ["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"],
        {"revenue": ("sum", _rev)},
    ).order_by([("revenue", True)]).limit(20)


def q11(db) -> Table:
    """Important stock: Germany's high-value partsupp holdings."""
    germany = db["nation"].filter_eq("n_name", "GERMANY")
    supp = db["supplier"].join(germany, "s_nationkey", "n_nationkey", how="semi")
    ps = db["partsupp"].join(supp.project(["s_suppkey"]), "ps_suppkey", "s_suppkey", how="semi")
    ps = ps.extend("value", lambda r: r["ps_supplycost"] * r["ps_availqty"])
    total = sum(ps.column("value")) if len(ps) else 0
    grouped = ps.group_by(["ps_partkey"], {"value": ("sum", lambda r: r["value"])})
    threshold = total * 0.0001
    return grouped.filter(lambda r: r["value"] > threshold).order_by([("value", True)])


def q12(db) -> Table:
    """Shipping-mode and order-priority split for MAIL/SHIP lines."""
    lo = date_to_day(1994, 1, 1)
    li = db["lineitem"].filter(
        lambda r: r["l_shipmode"] in ("MAIL", "SHIP")
        and r["l_commitdate"] < r["l_receiptdate"]
        and r["l_shipdate"] < r["l_commitdate"]
        and lo <= r["l_receiptdate"] < lo + 360
    )
    joined = li.join(db["orders"].project(["o_orderkey", "o_orderpriority"]), "l_orderkey", "o_orderkey")
    joined = joined.extend(
        "high", lambda r: 1 if r["o_orderpriority"] in ("1-URGENT", "2-HIGH") else 0
    )
    return joined.group_by(
        ["l_shipmode"],
        {
            "high_line_count": ("sum", lambda r: r["high"]),
            "low_line_count": ("sum", lambda r: 1 - r["high"]),
        },
    ).order_by([("l_shipmode", False)])


def q13(db) -> Table:
    """Customer distribution by order count (anti-join for zeros)."""
    orders = db["orders"].filter(lambda r: "special" not in r["o_comment"])
    counts = orders.group_by(["o_custkey"], {"c_count": ("count", None)})
    cust = db["customer"].project(["c_custkey"])
    with_orders = cust.join(counts, "c_custkey", "o_custkey")
    without = cust.join(counts, "c_custkey", "o_custkey", how="anti")
    without.columns["c_count"] = [0] * without.nrows
    combined_counts = with_orders.column("c_count") + without.column("c_count")
    merged = Table("q13", {"c_count": list(combined_counts)})
    merged.stats.merge(with_orders.stats)
    return merged.group_by(["c_count"], {"custdist": ("count", None)}).order_by(
        [("custdist", True), ("c_count", True)]
    )


def q14(db) -> Table:
    """Promotion effect: share of PROMO revenue in one month."""
    lo = date_to_day(1995, 9, 1)
    li = db["lineitem"].filter(lambda r: lo <= r["l_shipdate"] < lo + 30)
    li = li.join(db["part"].project(["p_partkey", "p_type"]), "l_partkey", "p_partkey")
    li = li.extend("promo", lambda r: _rev(r) if r["p_type"].startswith("PROMO") else 0.0)
    out = li.group_by(
        [], {"promo": ("sum", lambda r: r["promo"]), "total": ("sum", _rev)}
    )
    return out.extend(
        "promo_revenue", lambda r: 100.0 * r["promo"] / r["total"] if r["total"] else 0.0
    ).project(["promo_revenue"])


def q15(db) -> Table:
    """Top supplier by revenue in a quarter."""
    lo = date_to_day(1996, 1, 1)
    li = db["lineitem"].filter(lambda r: lo <= r["l_shipdate"] < lo + 90)
    revenue = li.group_by(["l_suppkey"], {"total_revenue": ("sum", _rev)})
    if not len(revenue):
        return revenue
    top = max(revenue.column("total_revenue"))
    best = revenue.filter(lambda r: r["total_revenue"] == top)
    return best.join(
        db["supplier"].project(["s_suppkey", "s_name", "s_address", "s_phone"]),
        "l_suppkey",
        "s_suppkey",
    ).order_by([("l_suppkey", False)])


def q16(db) -> Table:
    """Supplier counts per part attribute, excluding complainers."""
    complaints = db["supplier"].filter(lambda r: "Customer Complaints" in r["s_comment"])
    parts = db["part"].filter(
        lambda r: r["p_brand"] != "Brand#45"
        and not r["p_type"].startswith("MEDIUM POLISHED")
        and r["p_size"] in (49, 14, 23, 45, 19, 3, 36, 9)
    )
    ps = db["partsupp"].join(parts, "ps_partkey", "p_partkey")
    ps = ps.join(complaints.project(["s_suppkey"]), "ps_suppkey", "s_suppkey", how="anti")
    distinct = ps.distinct(["p_brand", "p_type", "p_size", "ps_suppkey"])
    return distinct.group_by(
        ["p_brand", "p_type", "p_size"], {"supplier_cnt": ("count", None)}
    ).order_by([("supplier_cnt", True), ("p_brand", False), ("p_type", False), ("p_size", False)])


def q17(db) -> Table:
    """Small-quantity-order revenue for Brand#23 MED BOX parts."""
    parts = db["part"].filter(
        lambda r: r["p_brand"] == "Brand#23" and r["p_container"] == "MED BOX"
    )
    li = db["lineitem"].join(parts.project(["p_partkey"]), "l_partkey", "p_partkey")
    if not len(li):
        return li.group_by([], {"avg_yearly": ("sum", lambda r: 0)})
    avg_qty = li.group_by(["p_partkey"], {"avg_q": ("avg", lambda r: r["l_quantity"])})
    li = li.join(avg_qty, "p_partkey", "p_partkey")
    small = li.filter(lambda r: r["l_quantity"] < 0.2 * r["avg_q"])
    return small.group_by(
        [], {"avg_yearly": ("sum", lambda r: r["l_extendedprice"] / 7.0)}
    )


def q18(db) -> Table:
    """Large-volume customers: orders totalling over 300 units."""
    per_order = db["lineitem"].group_by(
        ["l_orderkey"], {"sum_qty": ("sum", lambda r: r["l_quantity"])}
    )
    big = per_order.filter(lambda r: r["sum_qty"] > 300)
    orders = db["orders"].join(big, "o_orderkey", "l_orderkey")
    orders = orders.join(db["customer"].project(["c_custkey", "c_name"]), "o_custkey", "c_custkey")
    return orders.project(
        ["c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty"]
    ).order_by([("o_totalprice", True), ("o_orderdate", False)]).limit(100)


def q19(db) -> Table:
    """Discounted revenue for three brand/container/quantity shapes."""
    li = db["lineitem"].filter(
        lambda r: r["l_shipmode"] in ("AIR", "REG AIR")
        and r["l_shipinstruct"] == "DELIVER IN PERSON"
    )
    li = li.join(
        db["part"].project(["p_partkey", "p_brand", "p_container", "p_size"]),
        "l_partkey",
        "p_partkey",
    )

    def qualifies(r) -> bool:
        if r["p_brand"] == "Brand#12" and r["p_container"].startswith("SM"):
            return 1 <= r["l_quantity"] <= 11 and 1 <= r["p_size"] <= 5
        if r["p_brand"] == "Brand#23" and r["p_container"].startswith("MED"):
            return 10 <= r["l_quantity"] <= 20 and 1 <= r["p_size"] <= 10
        if r["p_brand"] == "Brand#34" and r["p_container"].startswith("LG"):
            return 20 <= r["l_quantity"] <= 30 and 1 <= r["p_size"] <= 15
        return False

    return li.filter(qualifies).group_by([], {"revenue": ("sum", _rev)})


def q20(db) -> Table:
    """Canadian suppliers with excess stock of forest parts, 1994."""
    lo = date_to_day(1994, 1, 1)
    forest_parts = db["part"].filter(lambda r: r["p_name"].startswith("forest"))
    li = db["lineitem"].filter(lambda r: lo <= r["l_shipdate"] < lo + 360)
    li = li.extend("ps_key", lambda r: (r["l_partkey"], r["l_suppkey"]))
    shipped = li.group_by(["ps_key"], {"qty": ("sum", lambda r: r["l_quantity"])})
    ps = db["partsupp"].join(forest_parts.project(["p_partkey"]), "ps_partkey", "p_partkey", how="semi")
    ps = ps.extend("ps_key", lambda r: (r["ps_partkey"], r["ps_suppkey"]))
    ps = ps.join(shipped, "ps_key", "ps_key")
    excess = ps.filter(lambda r: r["ps_availqty"] > 0.5 * r["qty"])
    canada = db["nation"].filter_eq("n_name", "CANADA")
    supp = db["supplier"].join(canada, "s_nationkey", "n_nationkey", how="semi")
    supp = supp.join(excess.project(["ps_suppkey"]), "s_suppkey", "ps_suppkey", how="semi")
    return supp.project(["s_name", "s_address"]).order_by([("s_name", False)])


def q21(db) -> Table:
    """Suppliers who kept multi-supplier orders waiting (Saudi Arabia)."""
    saudi = db["nation"].filter_eq("n_name", "SAUDI ARABIA")
    supp = db["supplier"].join(saudi, "s_nationkey", "n_nationkey", how="semi")
    li = db["lineitem"].project(
        ["l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"]
    )
    late = li.filter(lambda r: r["l_receiptdate"] > r["l_commitdate"])
    # Orders with more than one distinct supplier, where only this one is late.
    supp_count = li.distinct(["l_orderkey", "l_suppkey"]).group_by(
        ["l_orderkey"], {"n_supp": ("count", None)}
    )
    late_count = late.distinct(["l_orderkey", "l_suppkey"]).group_by(
        ["l_orderkey"], {"n_late": ("count", None)}
    )
    failed = db["orders"].filter_eq("o_orderstatus", "F").project(["o_orderkey"])
    candidates = late.join(supp.project(["s_suppkey", "s_name"]), "l_suppkey", "s_suppkey")
    candidates = candidates.join(failed, "l_orderkey", "o_orderkey", how="semi")
    candidates = candidates.join(supp_count, "l_orderkey", "l_orderkey")
    candidates = candidates.join(late_count, "l_orderkey", "l_orderkey")
    candidates = candidates.filter(lambda r: r["n_supp"] > 1 and r["n_late"] == 1)
    return candidates.group_by(["s_name"], {"numwait": ("count", None)}).order_by(
        [("numwait", True), ("s_name", False)]
    ).limit(100)


def q22(db) -> Table:
    """Global sales opportunity: rich customers with no orders."""
    codes = ("13", "31", "23", "29", "30", "18", "17")
    cust = db["customer"].extend("cntrycode", lambda r: r["c_phone"][:2])
    cust = cust.filter(lambda r: r["cntrycode"] in codes)
    positive = cust.filter(lambda r: r["c_acctbal"] > 0)
    avg_bal = (
        sum(positive.column("c_acctbal")) / len(positive) if len(positive) else 0.0
    )
    rich = cust.filter(lambda r: r["c_acctbal"] > avg_bal)
    no_orders = rich.join(db["orders"].project(["o_custkey"]), "c_custkey", "o_custkey", how="anti")
    return no_orders.group_by(
        ["cntrycode"],
        {"numcust": ("count", None), "totacctbal": ("sum", lambda r: r["c_acctbal"])},
    ).order_by([("cntrycode", False)])


# ---------------------------------------------------------------------------

QUERIES: Dict[int, Callable[[Dict[str, Table]], Table]] = {
    i + 1: fn
    for i, fn in enumerate(
        [q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11, q12, q13, q14, q15, q16, q17,
         q18, q19, q20, q21, q22]
    )
}

# Pushdown shapes: row selectivity of the lineitem filter the device can
# evaluate, and the fraction of the row width the pushed projection keeps.
_META: Dict[int, QueryMeta] = {
    1: QueryMeta(1, ("lineitem",), 0.95, 7 / 16),
    2: QueryMeta(2, ("part", "partsupp", "supplier", "nation", "region")),
    3: QueryMeta(3, ("customer", "orders", "lineitem"), 0.55, 4 / 16),
    4: QueryMeta(4, ("orders", "lineitem"), 0.60, 3 / 16),
    5: QueryMeta(5, ("region", "nation", "customer", "orders", "lineitem", "supplier"), 1.0, 4 / 16),
    6: QueryMeta(6, ("lineitem",), 0.02, 3 / 16),
    7: QueryMeta(7, ("supplier", "lineitem", "orders", "customer", "nation"), 0.30, 5 / 16),
    8: QueryMeta(8, ("part", "supplier", "lineitem", "orders", "customer", "nation", "region"), 0.30, 5 / 16),
    9: QueryMeta(9, ("part", "supplier", "lineitem", "partsupp", "orders", "nation"), 1.0, 6 / 16),
    10: QueryMeta(10, ("customer", "orders", "lineitem", "nation"), 0.25, 4 / 16),
    11: QueryMeta(11, ("partsupp", "supplier", "nation")),
    12: QueryMeta(12, ("orders", "lineitem"), 0.05, 4 / 16),
    13: QueryMeta(13, ("customer", "orders")),
    14: QueryMeta(14, ("lineitem", "part"), 0.012, 4 / 16),
    15: QueryMeta(15, ("supplier", "lineitem"), 0.035, 4 / 16),
    16: QueryMeta(16, ("partsupp", "part", "supplier")),
    17: QueryMeta(17, ("lineitem", "part"), 1.0, 4 / 16),
    18: QueryMeta(18, ("customer", "orders", "lineitem"), 1.0, 2 / 16),
    19: QueryMeta(19, ("lineitem", "part"), 0.08, 6 / 16),
    20: QueryMeta(20, ("supplier", "nation", "partsupp", "lineitem", "part"), 0.15, 4 / 16),
    21: QueryMeta(21, ("supplier", "lineitem", "orders", "nation"), 0.50, 4 / 16),
    22: QueryMeta(22, ("customer", "orders")),
}


def query_meta(number: int) -> QueryMeta:
    """Offload-relevant metadata for query ``number`` (1..22)."""
    try:
        return _META[number]
    except KeyError:
        raise AnalyticsError(f"query {number} out of range 1..22") from None


def run_query(db: Dict[str, Table], number: int) -> Table:
    """Execute TPC-H query ``number`` against ``db``."""
    try:
        fn = QUERIES[number]
    except KeyError:
        raise AnalyticsError(f"query {number} out of range 1..22") from None
    return fn(db)


def query_numbers() -> List[int]:
    """All implemented query numbers, ascending."""
    return sorted(QUERIES)
