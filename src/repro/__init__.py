"""ASSASIN reproduction: stream computing for computational storage.

A pure-Python reproduction of "ASSASIN: Architecture Support for Stream
Computing to Accelerate Computational Storage" (Zou & Chien, MICRO 2022):
an ISA-level core simulator with the stream ISA extension, an event-driven
flash/SSD simulator with FTL and crossbar, the offloaded kernels, a TPC-H
analytics substrate, and power/area/timing models — everything needed to
regenerate the paper's tables and figures.

Quickstart::

    from repro import assasin_sb_config
    from repro.ssd import simulate_offload
    from repro.kernels import get_kernel

    result = simulate_offload(assasin_sb_config(), get_kernel("stat"),
                              data_bytes=64 << 20)
    print(result.throughput_gbps)
"""

from repro.config import (
    CONFIG_NAMES,
    all_configs,
    assasin_sb_cache_config,
    assasin_sb_config,
    assasin_sp_config,
    baseline_config,
    named_config,
    prefetch_config,
    udp_config,
)

__version__ = "1.0.0"

__all__ = [
    "CONFIG_NAMES",
    "all_configs",
    "named_config",
    "baseline_config",
    "udp_config",
    "prefetch_config",
    "assasin_sp_config",
    "assasin_sb_config",
    "assasin_sb_cache_config",
    "__version__",
]
