"""Power, area and SRAM timing models (Cacti + Synopsys DC stand-ins).

``cacti`` holds an analytical SRAM model calibrated at a 14 nm-class node;
``models`` composes it with per-core logic constants into the paper's
Table V and the Figure 20/22 results.
"""

from repro.power.cacti import SRAMSpec, sram_access_time_ns, sram_area_mm2, sram_power_mw
from repro.power.models import (
    ComponentCost,
    ConfigCost,
    config_cost,
    efficiency_table,
    table5_components,
)

__all__ = [
    "SRAMSpec",
    "sram_access_time_ns",
    "sram_area_mm2",
    "sram_power_mw",
    "ComponentCost",
    "ConfigCost",
    "config_cost",
    "efficiency_table",
    "table5_components",
]
