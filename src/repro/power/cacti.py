"""Analytical SRAM timing/power/area model (Cacti stand-in, 14 nm-class).

The paper evaluates its memory structures with Cacti and a SAED 14 nm
library (Section VI-F/G). We reproduce the *trends* those tools report with
a logarithmic decoder + wire-delay model calibrated to the paper's anchor
points:

* a stream buffer (small prefetched FIFO, 64 B interface) reaches ~0.5 ns,
* a 64 KiB scratchpad with an 8 B port takes > 1 ns (2 cycles at 1 GHz),
* wider (64 B SIMD) scratchpad ports are slower still,
* an SRAM of L1-cache size is on the same order of magnitude in area and
  power as a small in-order core's logic (Table V observation).

Access time grows with log2(capacity) (decoder depth + longer bitlines and
word lines) and with log2(port width) (wider output muxes); energy and area
grow roughly linearly with capacity with a fixed overhead per structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.units import KIB

# Calibration constants (14 nm-class, single read/write port).
_T_FIXED_NS = 0.25  # sense amp + drivers + latch overhead
_T_PER_DOUBLING_NS = 0.12  # decoder level + bitline growth per 2x capacity
_T_WIDTH_NS = 0.15  # output mux growth per log2(width/8 + 1)
_REF_SIZE = 1 * KIB

_AREA_PER_KIB_MM2 = 0.0018  # dense 14nm SRAM macro
_AREA_FIXED_MM2 = 0.0006  # periphery per structure
_AREA_PER_WAY_MM2 = 0.00025  # tag + comparator overhead per way (caches)

_LEAK_PER_KIB_MW = 0.04  # leakage scales with capacity
_DYN_BASE_PJ = 2.0  # energy per access at 1 KiB
_DYN_PER_DOUBLING_PJ = 0.5  # longer lines/decoders per 2x capacity
_DYN_PER_WAY_PJ = 0.35  # parallel way read (set-assoc caches)


@dataclass(frozen=True)
class SRAMSpec:
    """One SRAM structure: capacity, port width, and associativity.

    ``ways > 1`` models a set-associative cache (parallel tag+data way
    lookup); scratchpads and FIFOs use ``ways=1``.
    """

    size_bytes: int
    port_width_bytes: int = 8
    ways: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.port_width_bytes <= 0 or self.ways <= 0:
            raise ConfigError("SRAM spec fields must be positive")


def _log2(value: float) -> float:
    from math import log2

    return log2(value)


def sram_access_time_ns(spec: SRAMSpec) -> float:
    """Random-access time of the structure in nanoseconds."""
    size_term = _T_PER_DOUBLING_NS * _log2(max(spec.size_bytes, 64) / _REF_SIZE)
    width_term = _T_WIDTH_NS * _log2(spec.port_width_bytes / 8 + 1)
    way_term = 0.03 * _log2(spec.ways) if spec.ways > 1 else 0.0
    return max(0.2, _T_FIXED_NS + size_term + width_term + way_term)


def sram_area_mm2(spec: SRAMSpec) -> float:
    """Silicon area of the structure in mm^2."""
    kib = spec.size_bytes / KIB
    return _AREA_FIXED_MM2 + kib * _AREA_PER_KIB_MM2 + (spec.ways - 1) * _AREA_PER_WAY_MM2


def sram_energy_per_access_pj(spec: SRAMSpec) -> float:
    """Dynamic energy of one access in picojoules."""
    size_term = _DYN_PER_DOUBLING_PJ * _log2(max(spec.size_bytes, 64) / _REF_SIZE)
    way_term = (spec.ways - 1) * _DYN_PER_WAY_PJ
    width_term = 0.3 * _log2(spec.port_width_bytes / 8 + 1)
    return max(0.5, _DYN_BASE_PJ + size_term + way_term + width_term)


def sram_power_mw(spec: SRAMSpec, utilisation: float = 1.0, clock_ghz: float = 1.0) -> float:
    """Power under load: leakage (capacity) + dynamic (access rate).

    ``utilisation`` is the fraction of cycles the structure is accessed;
    1 pJ per access at 1 GHz full utilisation is 1 mW.
    """
    if not 0.0 <= utilisation <= 1.0:
        raise ConfigError("utilisation must be within [0, 1]")
    kib = spec.size_bytes / KIB
    leakage = kib * _LEAK_PER_KIB_MW
    dynamic = sram_energy_per_access_pj(spec) * utilisation * clock_ghz
    return leakage + dynamic


# Convenience specs used across the evaluation ------------------------------

def l1_cache_spec() -> SRAMSpec:
    return SRAMSpec(size_bytes=32 * KIB, port_width_bytes=8, ways=8, name="L1D 32KB 8w")


def l2_cache_spec() -> SRAMSpec:
    return SRAMSpec(size_bytes=256 * KIB, port_width_bytes=8, ways=16, name="L2 256KB 16w")


def scratchpad_spec(size_bytes: int, width: int = 8) -> SRAMSpec:
    return SRAMSpec(size_bytes=size_bytes, port_width_bytes=width, name=f"SP {size_bytes // KIB}KB")


def streambuffer_head_fifo_spec(width: int = 64) -> SRAMSpec:
    """The core-facing prefetched FIFO: 2 x 128 B of head storage.

    The backing S x P page store is accessed at coarse (128 B-aligned)
    granularity off the critical path; only this small FIFO sits in MEM.
    """
    return SRAMSpec(size_bytes=256, port_width_bytes=width, name="SB head FIFO")


def streambuffer_backing_spec(capacity_bytes: int) -> SRAMSpec:
    return SRAMSpec(size_bytes=capacity_bytes, port_width_bytes=128, name="SB backing")
