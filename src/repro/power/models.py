"""Power/area composition for the evaluated configurations (Table V, Fig 22).

Combines the cacti-lite SRAM model with synthesised-logic constants for the
ibex-class cores and the UDP lane. Per-structure *utilisation* factors
reflect how often each structure is touched under streaming load (an L2 is
only exercised on L1 misses; stream buffers and scratchpads run every
cycle), which is what makes a streaming hierarchy cheaper per unit of
throughput — the paper's 2.0x power / 3.2x area efficiency argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import CoreConfig, EngineKind, SSDConfig
from repro.power.cacti import (
    SRAMSpec,
    sram_area_mm2,
    sram_power_mw,
    streambuffer_backing_spec,
    streambuffer_head_fifo_spec,
)

# Synthesised logic at a 14 nm-class node, 1 GHz.
CORE_LOGIC_AREA_MM2 = 0.021  # ibex-class RV32IM in-order core
CORE_LOGIC_POWER_MW = 2.6
UDP_LOGIC_AREA_MM2 = 0.032  # UDP lane: multiway dispatch + fused ALUs
UDP_LOGIC_POWER_MW = 4.1
CROSSBAR_AREA_MM2_PER_PORT = 0.004  # SSD-level interconnect, per core port
CROSSBAR_POWER_MW_PER_PORT = 0.9

# Fraction of cycles each structure is accessed under streaming offloads.
UTILISATION = {
    "l1": 0.45,  # data side of a load/store-rich streaming loop
    "l2": 0.10,  # only on L1 misses
    "scratchpad": 0.45,
    "pingpong": 0.35,
    "streambuffer": 0.40,
    "bpred": 0.25,  # predictor tables: touched on control-flow instructions
}


@dataclass(frozen=True)
class ComponentCost:
    """One subcomponent's silicon cost (Table V row)."""

    name: str
    area_mm2: float
    power_mw: float


@dataclass(frozen=True)
class ConfigCost:
    """Full compute-subsystem cost of one configuration."""

    name: str
    components: List[ComponentCost]
    num_cores: int

    @property
    def per_core_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    @property
    def per_core_power_mw(self) -> float:
        return sum(c.power_mw for c in self.components)

    @property
    def total_area_mm2(self) -> float:
        return self.per_core_area_mm2 * self.num_cores

    @property
    def total_power_mw(self) -> float:
        return self.per_core_power_mw * self.num_cores


def _sram_component(name: str, spec: SRAMSpec, utilisation: float) -> ComponentCost:
    return ComponentCost(
        name=name,
        area_mm2=sram_area_mm2(spec),
        power_mw=sram_power_mw(spec, utilisation),
    )


def core_components(core: CoreConfig, crossbar: bool = True) -> List[ComponentCost]:
    """Per-engine component list for a Table IV core."""
    parts: List[ComponentCost] = []
    if core.engine is EngineKind.UDP:
        parts.append(ComponentCost("UDP lane logic", UDP_LOGIC_AREA_MM2, UDP_LOGIC_POWER_MW))
    else:
        parts.append(ComponentCost("RV32IM core logic", CORE_LOGIC_AREA_MM2, CORE_LOGIC_POWER_MW))
        if core.pipeline_model == "predictive":
            # BTB (64 × 8 B tag+target) plus the tournament predictor's three
            # 2-bit counter tables (256 entries each, byte-packed): ~1 KiB of
            # predictor SRAM that the static model does not pay for.
            spec = SRAMSpec(1024, 4, 1, "BPRED")
            parts.append(
                _sram_component("Branch predictor tables 1KB", spec, UTILISATION["bpred"])
            )
    if core.l1d is not None:
        spec = SRAMSpec(core.l1d.size_bytes, 8, core.l1d.ways, "L1D")
        parts.append(_sram_component(f"L1D {core.l1d.size_bytes // 1024}KB", spec, UTILISATION["l1"]))
    if core.l2 is not None:
        spec = SRAMSpec(core.l2.size_bytes, 8, core.l2.ways, "L2")
        parts.append(_sram_component(f"L2 {core.l2.size_bytes // 1024}KB", spec, UTILISATION["l2"]))
    if core.scratchpad is not None:
        spec = SRAMSpec(core.scratchpad.size_bytes, core.scratchpad.port_width_bytes, 1, "SP")
        parts.append(
            _sram_component(
                f"Scratchpad {core.scratchpad.size_bytes // 1024}KB",
                spec,
                UTILISATION["scratchpad"],
            )
        )
    if core.pingpong is not None:
        # Two directions x two halves of staging scratchpad.
        spec = SRAMSpec(4 * core.pingpong.size_bytes, core.pingpong.port_width_bytes, 1, "PP")
        parts.append(_sram_component("Ping-pong staging 128KB", spec, UTILISATION["pingpong"]))
    if core.streambuffer is not None:
        backing = streambuffer_backing_spec(2 * core.streambuffer.capacity_bytes)
        parts.append(_sram_component("Streambuffer backing 128KB", backing, UTILISATION["streambuffer"]))
        fifo = streambuffer_head_fifo_spec(core.streambuffer.max_access_bytes)
        parts.append(_sram_component("Streambuffer head FIFOs", fifo, UTILISATION["streambuffer"]))
    if crossbar:
        parts.append(ComponentCost("Crossbar port", CROSSBAR_AREA_MM2_PER_PORT, CROSSBAR_POWER_MW_PER_PORT))
    return parts


def config_cost(config: SSDConfig) -> ConfigCost:
    """Compute-subsystem cost for one SSD configuration."""
    return ConfigCost(
        name=config.name,
        components=core_components(config.core, crossbar=config.crossbar),
        num_cores=config.num_cores,
    )


def table5_components(configs: Dict[str, SSDConfig]) -> Dict[str, ConfigCost]:
    """Table V: subcomponent and configuration costs, keyed by config name."""
    return {name: config_cost(cfg) for name, cfg in configs.items()}


@dataclass(frozen=True)
class EfficiencyRow:
    """One bar triplet of Figure 22."""

    name: str
    speedup: float
    power_ratio: float  # power vs Baseline
    area_ratio: float  # area vs Baseline

    @property
    def power_efficiency(self) -> float:
        """Speedup per unit power, relative to Baseline (=1.0)."""
        return self.speedup / self.power_ratio

    @property
    def area_efficiency(self) -> float:
        return self.speedup / self.area_ratio


def efficiency_table(
    configs: Dict[str, SSDConfig], speedups: Dict[str, float], baseline: str = "Baseline"
) -> List[EfficiencyRow]:
    """Figure 22: speedup / power-efficiency / area-efficiency vs Baseline."""
    costs = table5_components(configs)
    base = costs[baseline]
    rows = []
    for name, cost in costs.items():
        if name not in speedups:
            continue
        rows.append(
            EfficiencyRow(
                name=name,
                speedup=speedups[name],
                power_ratio=cost.total_power_mw / base.total_power_mw,
                area_ratio=cost.total_area_mm2 / base.total_area_mm2,
            )
        )
    return rows
