"""Per-core memory hierarchy: composes caches, scratchpads and DRAM timing.

The hierarchy is a timing oracle for the pipeline model: given (pc, address,
size, read/write, current cycle) it returns how many *stall* cycles the
access adds beyond the instruction's base cycle, which level served it, and
how many bytes moved to/from SSD DRAM. Data itself lives in
:class:`~repro.mem.memory.FlatMemory`.

Address map (32-bit core address space):

========================  =====================================
``0x0000_0000`` ...       DRAM-backed general space
``SCRATCHPAD_BASE``       per-core scratchpad (function state)
``PINGPONG_BASE``         ping+pong staging scratchpads
========================  =====================================

Stream buffers are not memory-mapped: they are reached only through the
stream ISA (Section V-B), which the core model handles directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import CoreConfig, DRAMConfig, PrefetcherKind
from repro.mem.cache import Cache
from repro.mem.dram import DRAMModel
from repro.mem.prefetcher import make_prefetcher
from repro.mem.scratchpad import PingPongBuffer, Scratchpad

SCRATCHPAD_BASE = 0x0100_0000
PINGPONG_BASE = 0x0110_0000
DRAM_SPACE_BYTES = 0x0100_0000  # 16 MiB of general space is ample for samples


class AccessType(enum.Enum):
    LOAD = "load"
    STORE = "store"


@dataclass
class AccessResult:
    """Timing outcome of one data access."""

    stall_cycles: float
    level: str  # 'l1' | 'l2' | 'dram' | 'scratchpad' | 'pingpong'
    dram_bytes: int = 0


@dataclass
class StallBuckets:
    """Cycle decomposition accumulators (paper Figure 5)."""

    compute: float = 0.0
    l1_wait: float = 0.0
    l2_stall: float = 0.0
    dram_stall: float = 0.0
    scratchpad_stall: float = 0.0
    stream_stall: float = 0.0

    @property
    def total_stall(self) -> float:
        return (
            self.l1_wait
            + self.l2_stall
            + self.dram_stall
            + self.scratchpad_stall
            + self.stream_stall
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute": self.compute,
            "l1_wait": self.l1_wait,
            "l2_stall": self.l2_stall,
            "dram_stall": self.dram_stall,
            "scratchpad_stall": self.scratchpad_stall,
            "stream_stall": self.stream_stall,
        }


class MemoryHierarchy:
    """Timing model for one core's data-side memory system."""

    def __init__(self, core: CoreConfig, dram: DRAMModel) -> None:
        self.core = core
        self.dram = dram
        self.l1: Optional[Cache] = Cache(core.l1d) if core.l1d else None
        self.l2: Optional[Cache] = Cache(core.l2) if core.l2 else None
        self.prefetcher = make_prefetcher(core.prefetcher)
        self.scratchpad: Optional[Scratchpad] = (
            Scratchpad(core.scratchpad, base_addr=SCRATCHPAD_BASE) if core.scratchpad else None
        )
        # Input staging (2 halves at PINGPONG_BASE) and output staging (2
        # halves right above) — "64KB I + 64KB O ping-pong" in Table IV.
        self.pingpong: Optional[PingPongBuffer] = (
            PingPongBuffer(core.pingpong, base_addr=PINGPONG_BASE) if core.pingpong else None
        )
        self.pingpong_out: Optional[PingPongBuffer] = (
            PingPongBuffer(core.pingpong, base_addr=PINGPONG_BASE + 2 * core.pingpong.size_bytes)
            if core.pingpong
            else None
        )
        self.buckets = StallBuckets()
        self._dram_latency = dram.latency_cycles(core.frequency_ghz)

    # -- classification ----------------------------------------------------

    def region(self, addr: int, size: int = 1) -> str:
        if self.scratchpad is not None and self.scratchpad.contains(addr, size):
            return "scratchpad"
        if self.pingpong is not None and (
            self.pingpong.contains(addr, size)
            or (self.pingpong_out is not None and self.pingpong_out.contains(addr, size))
        ):
            return "pingpong"
        return "dram"

    # -- the timing oracle ----------------------------------------------------

    def access(
        self, pc: int, addr: int, size: int, access: AccessType, cycle: float
    ) -> AccessResult:
        """Time one data access; updates stall buckets and DRAM traffic."""
        region = self.region(addr, size)
        if region == "scratchpad":
            return self._scratchpad_access(self.scratchpad, size, access, region)
        if region == "pingpong":
            # Timing is identical for any half and either direction; record
            # the access against the input ping half's stats.
            return self._scratchpad_access(self.pingpong.ping, size, access, region)
        return self._dram_space_access(pc, addr, size, access, cycle)

    def _scratchpad_access(
        self, pad: Scratchpad, size: int, access: AccessType, region: str
    ) -> AccessResult:
        pad.record(size, access is AccessType.STORE)
        # A 1-cycle scratchpad is fully pipelined (no stall); each extra
        # latency cycle and each extra port beat stalls the in-order pipe.
        stall = pad.access_latency(size) - 1
        self.buckets.scratchpad_stall += stall
        return AccessResult(stall_cycles=stall, level=region)

    def _dram_space_access(
        self, pc: int, addr: int, size: int, access: AccessType, cycle: float
    ) -> AccessResult:
        is_write = access is AccessType.STORE
        if self.l1 is None:
            # No cache in front of DRAM (UDP lanes copy via firmware; plain
            # cores without caches pay the full round trip).
            stall = self._dram_latency
            self.buckets.dram_stall += stall
            traffic = size
            self.dram.add_traffic(
                "core_writeback" if is_write else "core_fill", traffic
            )
            return AccessResult(stall_cycles=stall, level="dram", dram_bytes=traffic)

        line = self.l1.config.line_bytes
        result = self.l1.lookup(addr, is_write, cycle)
        dram_bytes = 0
        if result.hit:
            stall = result.extra_wait
            self.buckets.l1_wait += stall
            level = "l1"
        else:
            if result.writeback:
                dram_bytes += line
                self.dram.add_traffic("core_writeback", line)
            if self.l2 is not None:
                l2_result = self.l2.lookup(addr, is_write, cycle)
                if l2_result.hit:
                    stall = self.l2.config.hit_latency_cycles + l2_result.extra_wait
                    self.buckets.l2_stall += stall
                    level = "l2"
                else:
                    if l2_result.writeback:
                        dram_bytes += line
                        self.dram.add_traffic("core_writeback", line)
                    stall = self.l2.config.hit_latency_cycles + self._dram_latency
                    self.buckets.l2_stall += self.l2.config.hit_latency_cycles
                    self.buckets.dram_stall += self._dram_latency
                    dram_bytes += line
                    self.dram.add_traffic("core_fill", line)
                    self.l2.set_fill_time(addr, cycle + stall)
                    level = "dram"
            else:
                stall = self._dram_latency
                self.buckets.dram_stall += stall
                dram_bytes += line
                self.dram.add_traffic("core_fill", line)
                level = "dram"
            self.l1.set_fill_time(addr, cycle + stall)
        self._run_prefetcher(pc, addr, cycle)
        return AccessResult(stall_cycles=stall, level=level, dram_bytes=dram_bytes)

    def _run_prefetcher(self, pc: int, addr: int, cycle: float) -> None:
        if self.core.prefetcher is PrefetcherKind.NONE or self.l1 is None:
            return
        predictions = self.prefetcher.observe(pc, addr)
        for target in predictions:
            if target < 0 or target >= DRAM_SPACE_BYTES + SCRATCHPAD_BASE:
                continue
            # Prefetch fills come from L2 if present there, else from DRAM.
            if self.l2 is not None and self.l2.contains(target):
                ready = cycle + self.l2.config.hit_latency_cycles
                if self.l1.prefetch(target, ready):
                    pass  # L2 -> L1 move, no DRAM traffic
            else:
                ready = cycle + self._dram_latency
                if self.l1.prefetch(target, ready):
                    line = self.l1.config.line_bytes
                    self.dram.add_traffic("core_fill", line)
                    if self.l2 is not None:
                        self.l2.prefetch(target, ready)

    # -- bookkeeping -----------------------------------------------------------

    def add_compute_cycles(self, cycles: float) -> None:
        self.buckets.compute += cycles

    def add_stream_stall(self, cycles: float) -> None:
        self.buckets.stream_stall += cycles

    def reset_stats(self) -> None:
        self.buckets = StallBuckets()
        if self.l1 is not None:
            self.l1.flush()
            self.l1.stats.__init__()
        if self.l2 is not None:
            self.l2.flush()
            self.l2.stats.__init__()
        self.prefetcher.reset()


def build_hierarchy(core: CoreConfig, dram_config: Optional[DRAMConfig] = None) -> MemoryHierarchy:
    """Construct a hierarchy (and its DRAM model) for a Table IV core."""
    dram = DRAMModel(dram_config or DRAMConfig())
    return MemoryHierarchy(core, dram)
