"""Set-associative write-back, write-allocate cache timing model.

The cache tracks tags, LRU order, dirty bits, and per-line fill-ready cycles
(so prefetched lines that are still in flight can be charged a partial miss).
It stores no data: the interpreter's functional state lives in
:class:`~repro.mem.memory.FlatMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import CacheConfig
from repro.errors import MemoryError_


@dataclass
class CacheStats:
    """Hit/miss and traffic counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0
    late_prefetch_hits: int = 0
    writebacks: int = 0
    prefetches_issued: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


@dataclass
class _Line:
    tag: int
    dirty: bool = False
    prefetched: bool = False
    ready_cycle: float = 0.0


@dataclass
class LookupResult:
    """Outcome of a cache lookup.

    ``extra_wait`` is the number of cycles the access must still wait for an
    in-flight (prefetched) fill, 0 for a plain hit, and None for a miss.
    """

    hit: bool
    extra_wait: float = 0.0
    writeback: bool = False


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.line_bytes = config.line_bytes
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(self.num_sets)]
        # LRU: per-set list of tags, most recent last.
        self._lru: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- address helpers ---------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr // self.line_bytes

    def _index_tag(self, line: int) -> Tuple[int, int]:
        return line % self.num_sets, line // self.num_sets

    # -- operations ---------------------------------------------------------

    def lookup(self, addr: int, is_write: bool, cycle: float) -> LookupResult:
        """Probe (and on miss, fill) the line containing ``addr``.

        Returns a :class:`LookupResult`; on a miss the line is installed with
        ``ready_cycle`` left at ``cycle`` (the caller adds the fill latency
        via :meth:`set_fill_time` if it wants in-flight modelling).
        """
        line = self.line_addr(addr)
        index, tag = self._index_tag(line)
        cache_set = self._sets[index]
        self.stats.accesses += 1
        entry = cache_set.get(tag)
        if entry is not None:
            self._touch(index, tag)
            if is_write:
                entry.dirty = True
            extra = max(0.0, entry.ready_cycle - cycle)
            if entry.prefetched:
                entry.prefetched = False
                self.stats.prefetch_hits += 1
                if extra > 0:
                    self.stats.late_prefetch_hits += 1
            self.stats.hits += 1
            return LookupResult(hit=True, extra_wait=extra)
        self.stats.misses += 1
        writeback = self._install(index, tag, dirty=is_write, prefetched=False, ready_cycle=cycle)
        return LookupResult(hit=False, writeback=writeback)

    def prefetch(self, addr: int, ready_cycle: float) -> bool:
        """Install a prefetched line that becomes usable at ``ready_cycle``.

        Returns True if a line was actually installed (False if already
        present). Prefetches never dirty lines.
        """
        line = self.line_addr(addr)
        index, tag = self._index_tag(line)
        if tag in self._sets[index]:
            return False
        self.stats.prefetches_issued += 1
        self._install(index, tag, dirty=False, prefetched=True, ready_cycle=ready_cycle)
        return True

    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        index, tag = self._index_tag(line)
        return tag in self._sets[index]

    def flush(self) -> int:
        """Drop all lines; returns the number of dirty lines written back."""
        dirty = sum(1 for s in self._sets for line in s.values() if line.dirty)
        self.stats.writebacks += dirty
        self._sets = [dict() for _ in range(self.num_sets)]
        self._lru = [[] for _ in range(self.num_sets)]
        return dirty

    # -- internals -----------------------------------------------------------

    def _touch(self, index: int, tag: int) -> None:
        order = self._lru[index]
        order.remove(tag)
        order.append(tag)

    def _install(
        self, index: int, tag: int, dirty: bool, prefetched: bool, ready_cycle: float
    ) -> bool:
        cache_set = self._sets[index]
        order = self._lru[index]
        writeback = False
        if len(cache_set) >= self.config.ways:
            victim_tag = order.pop(0)
            victim = cache_set.pop(victim_tag)
            if victim.dirty:
                writeback = True
                self.stats.writebacks += 1
        cache_set[tag] = _Line(tag=tag, dirty=dirty, prefetched=prefetched, ready_cycle=ready_cycle)
        order.append(tag)
        if len(cache_set) > self.config.ways:
            raise MemoryError_("cache set overflow (internal invariant violated)")
        return writeback

    def set_fill_time(self, addr: int, ready_cycle: float) -> None:
        """Record when the (just-missed) line's fill completes."""
        line = self.line_addr(addr)
        index, tag = self._index_tag(line)
        entry = self._sets[index].get(tag)
        if entry is not None:
            entry.ready_cycle = ready_cycle

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
