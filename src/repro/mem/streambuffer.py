"""Input/output stream buffers (paper Section V-B, Figure 8).

A stream buffer holds up to ``S`` streams; each stream is a circular buffer
of ``P`` flash pages with Head and Tail pointers exposed as control/status
registers. The core touches only the stream *head* — ``StreamLoad`` consumes
from an input stream, ``StreamStore`` appends to an output stream — which is
the restricted access pattern that lets hardware implement the structure as
a small prefetched FIFO and reach a 0.5 ns cycle (Figure 20).

Unlike the cache/scratchpad timing models, stream buffers carry real bytes:
they *are* the data path between the flash controllers and the core.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import StreamBufferConfig
from repro.errors import StreamError


class StreamState(enum.Enum):
    """Lifecycle of one stream slot, managed by firmware (Figure 10)."""

    IDLE = "idle"
    ACTIVE = "active"
    DRAINING = "draining"  # producer finished; consumer may drain the rest
    CLOSED = "closed"


class StreamBuffer:
    """One circular stream of ``P`` pages with monotonic Head/Tail pointers.

    ``head`` and ``tail`` count total bytes consumed/filled since the stream
    was opened; the CSR views (:attr:`head_csr`, :attr:`tail_csr`) are those
    counters modulo the buffer capacity, matching the hardware registers the
    firmware polls.
    """

    def __init__(self, config: StreamBufferConfig, stream_id: int = 0) -> None:
        self.config = config
        self.stream_id = stream_id
        self.capacity = config.pages_per_stream * config.page_bytes
        self._ring = bytearray(self.capacity)
        self.head = 0  # bytes consumed (monotonic)
        self.tail = 0  # bytes filled (monotonic)
        self.state = StreamState.IDLE
        self.underflows = 0
        self.overflow_rejects = 0
        # Called when a consumer needs data that is not yet buffered; gives a
        # driver (firmware model or auto-filler in core-only runs) a chance
        # to push more bytes synchronously.
        self.refill_hook: Optional[Callable[["StreamBuffer", int], None]] = None
        # Called when a producer needs space that is not yet free; gives a
        # driver a chance to drain completed pages synchronously.
        self.space_hook: Optional[Callable[["StreamBuffer", int], None]] = None

    # -- pointer views -------------------------------------------------------

    @property
    def available(self) -> int:
        """Bytes buffered and not yet consumed."""
        return self.tail - self.head

    @property
    def free_space(self) -> int:
        return self.capacity - self.available

    @property
    def head_csr(self) -> int:
        return self.head % self.capacity

    @property
    def tail_csr(self) -> int:
        return self.tail % self.capacity

    @property
    def pages_filled(self) -> int:
        """Number of whole pages pushed so far (used for the I/O trace)."""
        return self.tail // self.config.page_bytes

    @property
    def exhausted(self) -> bool:
        """No data left and the producer has finished."""
        return self.available == 0 and self.state in (StreamState.DRAINING, StreamState.CLOSED)

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> None:
        if self.state is not StreamState.IDLE:
            raise StreamError(f"stream {self.stream_id} already open (state={self.state})")
        self.state = StreamState.ACTIVE

    def finish_producing(self) -> None:
        """Producer signals end of stream; remaining bytes stay drainable."""
        if self.state is StreamState.ACTIVE:
            self.state = StreamState.DRAINING
        elif self.state is StreamState.IDLE:
            self.state = StreamState.DRAINING

    def close(self) -> None:
        self.state = StreamState.CLOSED

    def reset(self) -> None:
        self.head = 0
        self.tail = 0
        self.state = StreamState.IDLE
        self.underflows = 0
        self.overflow_rejects = 0

    # -- producer side ---------------------------------------------------------

    def push(self, data: bytes) -> None:
        """Append ``data`` at the tail. Raises on overflow or a closed stream."""
        if self.state in (StreamState.CLOSED,):
            raise StreamError(f"push on closed stream {self.stream_id}")
        if self.state is StreamState.IDLE:
            self.open()
        if len(data) > self.free_space and self.space_hook is not None:
            self.space_hook(self, len(data))
        if len(data) > self.free_space:
            self.overflow_rejects += 1
            raise StreamError(
                f"stream {self.stream_id} overflow: pushing {len(data)} with "
                f"{self.free_space} free"
            )
        pos = self.tail % self.capacity
        first = min(len(data), self.capacity - pos)
        self._ring[pos : pos + first] = data[:first]
        if first < len(data):
            self._ring[0 : len(data) - first] = data[first:]
        self.tail += len(data)

    def can_push(self, size: int) -> bool:
        return self.state is not StreamState.CLOSED and size <= self.free_space

    # -- consumer side -----------------------------------------------------------

    def peek(self, size: int) -> Optional[bytes]:
        """Read ``size`` bytes at the head without consuming, or None if short."""
        if size <= 0:
            raise StreamError("peek size must be positive")
        if size > self.capacity:
            raise StreamError(f"peek of {size} exceeds stream capacity {self.capacity}")
        if self.available < size:
            if self.refill_hook is not None:
                self.refill_hook(self, size)
            if self.available < size:
                return None
        pos = self.head % self.capacity
        first = min(size, self.capacity - pos)
        out = bytes(self._ring[pos : pos + first])
        if first < size:
            out += bytes(self._ring[0 : size - first])
        return out

    def consume(self, size: int) -> Optional[bytes]:
        """Destructively read ``size`` bytes from the head.

        Returns None when the stream cannot currently satisfy the request:
        the caller (core model) decides whether that means *stall* (producer
        still active) or *end of stream* (see :attr:`exhausted`).
        """
        data = self.peek(size)
        if data is None:
            self.underflows += 1
            return None
        self.head += size
        return data

    def drain_page(self) -> Optional[bytes]:
        """Firmware-side pop of one full page (or the final partial tail)."""
        page = self.config.page_bytes
        if self.available >= page:
            return self.consume(page)
        if self.available > 0 and self.state in (StreamState.DRAINING, StreamState.CLOSED):
            return self.consume(self.available)
        return None


@dataclass
class StreamAccessRecord:
    """One head access, used by the core model to build the page I/O trace."""

    stream_id: int
    byte_offset: int
    size: int


class StreamBufferSet:
    """A direction's worth of stream buffers (all-input or all-output)."""

    def __init__(self, config: StreamBufferConfig, direction: str) -> None:
        if direction not in ("input", "output"):
            raise StreamError("direction must be 'input' or 'output'")
        self.config = config
        self.direction = direction
        self.streams: List[StreamBuffer] = [
            StreamBuffer(config, stream_id=i) for i in range(config.num_streams)
        ]

    def __getitem__(self, stream_id: int) -> StreamBuffer:
        if not 0 <= stream_id < len(self.streams):
            raise StreamError(
                f"stream id {stream_id} out of range (S={len(self.streams)})"
            )
        return self.streams[stream_id]

    def __len__(self) -> int:
        return len(self.streams)

    def reset(self) -> None:
        for stream in self.streams:
            stream.reset()

    @property
    def total_available(self) -> int:
        return sum(s.available for s in self.streams)
