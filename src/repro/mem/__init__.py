"""Memory-system substrate: caches, prefetchers, scratchpads, stream buffers.

Functional data always lives in a :class:`~repro.mem.memory.FlatMemory`; the
cache/scratchpad/stream-buffer models in this package are *timing* models
(tag arrays and pointers only), mirroring how the paper separates Gem5's
functional execution from its memory-hierarchy timing.
"""

from repro.mem.memory import FlatMemory
from repro.mem.cache import Cache, CacheStats
from repro.mem.prefetcher import DCPTPrefetcher, NullPrefetcher, StridePrefetcher, make_prefetcher
from repro.mem.scratchpad import PingPongBuffer, Scratchpad
from repro.mem.streambuffer import StreamBuffer, StreamBufferSet, StreamState
from repro.mem.dram import DRAMModel
from repro.mem.hierarchy import AccessResult, AccessType, MemoryHierarchy, build_hierarchy

__all__ = [
    "FlatMemory",
    "Cache",
    "CacheStats",
    "DCPTPrefetcher",
    "NullPrefetcher",
    "StridePrefetcher",
    "make_prefetcher",
    "PingPongBuffer",
    "Scratchpad",
    "StreamBuffer",
    "StreamBufferSet",
    "StreamState",
    "DRAMModel",
    "AccessResult",
    "AccessType",
    "MemoryHierarchy",
    "build_hierarchy",
]
