"""Flat byte-addressable memory backing functional execution."""

from __future__ import annotations

from repro.errors import MemoryError_


class FlatMemory:
    """A bounds-checked flat memory with little-endian word access.

    This is the functional store for the ISA interpreter and kernel
    references. Timing is handled separately by the hierarchy models.
    """

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise MemoryError_("memory size must be positive")
        self.size_bytes = size_bytes
        self._data = bytearray(size_bytes)

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size_bytes:
            raise MemoryError_(
                f"access [{addr}, {addr + size}) outside memory of {self.size_bytes} bytes"
            )

    def load_bytes(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self._data[addr : addr + size])

    def store_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._data[addr : addr + len(data)] = data

    def load_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self._data[addr]

    def load_u16(self, addr: int) -> int:
        self._check(addr, 2)
        return int.from_bytes(self._data[addr : addr + 2], "little")

    def load_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self._data[addr : addr + 4], "little")

    def store_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._data[addr] = value & 0xFF

    def store_u16(self, addr: int, value: int) -> None:
        self._check(addr, 2)
        self._data[addr : addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def store_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self._data[addr : addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def fill(self, addr: int, size: int, value: int = 0) -> None:
        """Set ``size`` bytes starting at ``addr`` to ``value``."""
        self._check(addr, size)
        self._data[addr : addr + size] = bytes([value & 0xFF]) * size

    def __len__(self) -> int:
        return self.size_bytes
