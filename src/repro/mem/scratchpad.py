"""Scratchpad and ping-pong buffer models.

A scratchpad is software-managed SRAM mapped into the core's address space
with a fixed access latency (one cycle at moderate sizes; two cycles at
64 KiB once real SRAM timing is applied — Figure 20). The ping-pong pair is
how ``AssasinSp`` double-buffers flash data: the firmware fills the *pong*
buffer while the core computes out of the *ping* buffer, then the roles swap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ScratchpadConfig
from repro.errors import MemoryError_


@dataclass
class ScratchpadStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class Scratchpad:
    """Timing + occupancy model of one scratchpad (data lives in FlatMemory)."""

    def __init__(self, config: ScratchpadConfig, base_addr: int = 0) -> None:
        self.config = config
        self.base_addr = base_addr
        self.stats = ScratchpadStats()

    @property
    def size_bytes(self) -> int:
        return self.config.size_bytes

    @property
    def end_addr(self) -> int:
        return self.base_addr + self.size_bytes

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base_addr <= addr and addr + size <= self.end_addr

    def access_latency(self, size: int) -> int:
        """Cycles for one access of ``size`` bytes (wide accesses are split)."""
        if size <= 0:
            raise MemoryError_("scratchpad access size must be positive")
        beats = -(-size // self.config.port_width_bytes)  # ceil division
        return self.config.access_latency_cycles * beats

    def record(self, size: int, is_write: bool) -> None:
        if is_write:
            self.stats.writes += 1
            self.stats.bytes_written += size
        else:
            self.stats.reads += 1
            self.stats.bytes_read += size


class PingPongBuffer:
    """A pair of scratchpads double-buffering a data stream.

    The compute side drains the *active* buffer while the fill side loads the
    *shadow* buffer. :meth:`swap` flips roles; it may only happen when the
    shadow fill has completed, which the firmware model enforces by timing.
    """

    def __init__(self, config: ScratchpadConfig, base_addr: int = 0) -> None:
        self.ping = Scratchpad(config, base_addr=base_addr)
        self.pong = Scratchpad(config, base_addr=base_addr + config.size_bytes)
        self._active_is_ping = True
        self.swaps = 0
        # Fill completion time (ns) for the shadow buffer, set by firmware.
        self.shadow_ready_ns: float = 0.0

    @property
    def active(self) -> Scratchpad:
        return self.ping if self._active_is_ping else self.pong

    @property
    def shadow(self) -> Scratchpad:
        return self.pong if self._active_is_ping else self.ping

    @property
    def buffer_bytes(self) -> int:
        return self.ping.size_bytes

    def swap(self) -> None:
        self._active_is_ping = not self._active_is_ping
        self.swaps += 1

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.ping.contains(addr, size) or self.pong.contains(addr, size)

    def access_latency(self, size: int) -> int:
        return self.ping.access_latency(size)
