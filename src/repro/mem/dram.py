"""SSD DRAM model: fixed access latency plus a shared bandwidth pool.

The paper's memory-wall argument (Section III) is about *bandwidth*: in the
baseline architecture every computed byte crosses the SSD DRAM twice (flash
controller fills it, compute engine reads it back), so the 8 GB/s LPDDR5 pool
caps aggregate compute at ~4 GB/s before latency even enters. This model
tracks traffic per class so the device level can apply that contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import DRAMConfig


@dataclass
class DRAMTraffic:
    """Byte counters by traffic class."""

    flash_staging: int = 0  # flash controller <-> DRAM page moves
    core_fill: int = 0  # cache fills / direct core reads
    core_writeback: int = 0  # dirty evictions / result writes
    firmware: int = 0  # FTL metadata and queues

    @property
    def total(self) -> int:
        return self.flash_staging + self.core_fill + self.core_writeback + self.firmware

    def as_dict(self) -> Dict[str, int]:
        return {
            "flash_staging": self.flash_staging,
            "core_fill": self.core_fill,
            "core_writeback": self.core_writeback,
            "firmware": self.firmware,
        }


class DRAMModel:
    """Latency/bandwidth accounting for the SSD-internal DRAM."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self.traffic = DRAMTraffic()

    def latency_cycles(self, clock_ghz: float) -> float:
        """Access latency expressed in core cycles."""
        return self.config.latency_ns * clock_ghz

    def add_traffic(self, kind: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("traffic bytes must be non-negative")
        if not hasattr(self.traffic, kind):
            raise ValueError(f"unknown traffic class {kind!r}")
        setattr(self.traffic, kind, getattr(self.traffic, kind) + nbytes)

    def reset_traffic(self) -> None:
        self.traffic = DRAMTraffic()

    def contention_factor(self, demand_bytes_per_ns: float) -> float:
        """How much a demand stream must be slowed to fit the pool.

        Returns >= 1.0; 1.0 means the DRAM satisfies the demand at full rate.
        """
        bw = self.config.bandwidth_bytes_per_ns
        if demand_bytes_per_ns <= bw:
            return 1.0
        return demand_bytes_per_ns / bw

    def effective_rate(self, demand_bytes_per_ns: float) -> float:
        """Achievable throughput for a given aggregate demand."""
        return min(demand_bytes_per_ns, self.config.bandwidth_bytes_per_ns)
