"""Hardware prefetcher models: stride and DCPT (delta-correlating).

The paper's ``Prefetch`` configuration uses Gem5's DCPT prefetcher
(Grannaes et al.), which it found best on these workloads. DCPT keeps a
per-PC circular history of address deltas and, when the two most recent
deltas reappear earlier in the history, replays the deltas that followed to
predict future addresses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import PrefetcherKind
from repro.errors import ConfigError


class NullPrefetcher:
    """No prefetching: returns no predictions."""

    kind = PrefetcherKind.NONE

    def observe(self, pc: int, addr: int) -> List[int]:
        return []

    def reset(self) -> None:  # pragma: no cover - trivial
        pass


@dataclass
class _StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Classic per-PC stride prefetcher with 2-bit confidence."""

    kind = PrefetcherKind.STRIDE

    def __init__(self, table_size: int = 64, degree: int = 4, line_bytes: int = 64) -> None:
        if table_size <= 0 or degree <= 0:
            raise ConfigError("stride prefetcher table size and degree must be positive")
        self.table_size = table_size
        self.degree = degree
        self.line_bytes = line_bytes
        self._table: "OrderedDict[int, _StrideEntry]" = OrderedDict()

    def reset(self) -> None:
        self._table.clear()

    def observe(self, pc: int, addr: int) -> List[int]:
        entry = self._table.get(pc)
        predictions: List[int] = []
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[pc] = _StrideEntry(last_addr=addr)
            return predictions
        self._table.move_to_end(pc)
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            entry.stride = stride
        entry.last_addr = addr
        if entry.confidence >= 2 and entry.stride != 0:
            predictions = [addr + entry.stride * (i + 1) for i in range(self.degree)]
        return predictions


@dataclass
class _DCPTEntry:
    last_addr: int
    last_prefetch: int = -1
    deltas: List[int] = field(default_factory=list)


class DCPTPrefetcher:
    """Delta-Correlating Prediction Table prefetcher.

    Per-PC entries store up to ``history`` recent deltas. On each access the
    newest delta pair is searched in the older history; on a match, the
    deltas that followed the earlier occurrence are replayed from the current
    address to produce up to ``degree`` predictions. ``last_prefetch``
    suppresses duplicate predictions for the same stream.
    """

    kind = PrefetcherKind.DCPT

    def __init__(
        self,
        table_size: int = 128,
        history: int = 16,
        degree: int = 8,
        line_bytes: int = 64,
    ) -> None:
        if history < 2:
            raise ConfigError("DCPT needs at least two deltas of history")
        self.table_size = table_size
        self.history = history
        self.degree = degree
        self.line_bytes = line_bytes
        self._table: "OrderedDict[int, _DCPTEntry]" = OrderedDict()

    def reset(self) -> None:
        self._table.clear()

    def observe(self, pc: int, addr: int) -> List[int]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[pc] = _DCPTEntry(last_addr=addr)
            return []
        self._table.move_to_end(pc)
        delta = addr - entry.last_addr
        entry.last_addr = addr
        if delta == 0:
            return []
        entry.deltas.append(delta)
        if len(entry.deltas) > self.history:
            entry.deltas.pop(0)
        return self._predict(entry, addr)

    def _predict(self, entry: _DCPTEntry, addr: int) -> List[int]:
        deltas = entry.deltas
        if len(deltas) < 2:
            return []
        d1, d2 = deltas[-2], deltas[-1]
        match: Optional[int] = None
        # Search for the newest earlier occurrence of the (d1, d2) pair.
        for i in range(len(deltas) - 3, -1, -1):
            if deltas[i] == d1 and deltas[i + 1] == d2:
                match = i
                break
        if match is None:
            # Fall back to constant-stride replay when the last two deltas
            # agree — DCPT degenerates gracefully to a stride prefetcher.
            if d1 != d2:
                return []
            replay = [d2] * self.degree
        else:
            replay = deltas[match + 2 :]
            while len(replay) < self.degree:
                replay = replay + deltas[match + 2 :] if deltas[match + 2 :] else replay + [d2]
            replay = replay[: self.degree]
        predictions: List[int] = []
        candidate = addr
        for delta in replay:
            candidate += delta
            if candidate > entry.last_prefetch and candidate > addr:
                predictions.append(candidate)
        if predictions:
            entry.last_prefetch = max(predictions)
        return predictions


def make_prefetcher(kind: PrefetcherKind, line_bytes: int = 64):
    """Factory matching :class:`~repro.config.PrefetcherKind`."""
    if kind is PrefetcherKind.NONE:
        return NullPrefetcher()
    if kind is PrefetcherKind.STRIDE:
        return StridePrefetcher(line_bytes=line_bytes)
    if kind is PrefetcherKind.DCPT:
        return DCPTPrefetcher(line_bytes=line_bytes)
    raise ConfigError(f"unknown prefetcher kind {kind!r}")
