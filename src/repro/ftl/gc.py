"""Greedy garbage collection over the page-mapped FTL.

Victim selection is greedy-by-invalid-count (the standard MQSim policy):
the block with the most invalid pages is reclaimed first, still-valid pages
are relocated through the allocator, and the erase is timed against the
flash array so GC pressure shows up as channel/die occupancy.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FTLError
from repro.flash.array import FlashArray, PhysicalPageAddress
from repro.ftl.mapping import PageMapFTL

BlockId = Tuple[int, int, int, int, int]  # channel, chip, die, plane, block


@dataclass
class GCResult:
    """Outcome of one collection pass."""

    victim: BlockId
    relocated: int
    reclaimed: int
    done_ns: float


class GarbageCollector:
    """Greedy victim selection + valid-page relocation + timed erase."""

    def __init__(self, ftl: PageMapFTL, array: FlashArray) -> None:
        self.ftl = ftl
        self.array = array
        self.collections = 0
        self.pages_relocated = 0

    def _blocks_by_invalid(self) -> Dict[BlockId, List[PhysicalPageAddress]]:
        groups: Dict[BlockId, List[PhysicalPageAddress]] = defaultdict(list)
        for ppa in self.ftl.invalid_pages:
            key = (ppa.channel, ppa.chip, ppa.die, ppa.plane, ppa.block)
            groups[key].append(ppa)
        return groups

    def pick_victim(self) -> Optional[BlockId]:
        groups = self._blocks_by_invalid()
        # Never reclaim an open write point: its remaining pages are about
        # to be programmed.
        open_blocks = self.ftl.allocator.open_blocks()
        candidates = {k: v for k, v in groups.items() if k not in open_blocks}
        if not candidates:
            return None
        # Most invalid pages first; break ties toward least-worn blocks.
        def score(item):
            key, pages = item
            return (len(pages), -self.ftl.wear.erase_count(key))

        return max(candidates.items(), key=score)[0]

    def collect(self, at_ns: float = 0.0) -> GCResult:
        """Run one GC pass; raises if there is nothing to collect."""
        victim = self.pick_victim()
        if victim is None:
            raise FTLError("no invalid pages: nothing to collect")
        channel, chip, die, plane, block = victim
        pages_per_block = self.ftl.config.pages_per_block
        invalid_here = {
            ppa.page
            for ppa in self.ftl.invalid_pages
            if (ppa.channel, ppa.chip, ppa.die, ppa.plane, ppa.block) == victim
        }
        # Relocate valid pages (mapped pages living in this block).
        relocated = 0
        now = at_ns
        for page in range(pages_per_block):
            if page in invalid_here:
                continue
            ppa = PhysicalPageAddress(channel, chip, die, plane, block, page)
            lpa = self.ftl.reverse_lookup(ppa)
            if lpa is None:
                continue  # never-written page
            read = self.array.service_read(ppa, now)
            _, new_ppa = self.ftl.remap_for_gc(lpa)
            write = self.array.service_write(new_ppa, read.done_ns)
            now = write.array_done_ns
            relocated += 1
        erase_ppa = PhysicalPageAddress(channel, chip, die, plane, block, 0)
        done = self.array.erase(erase_ppa, now)
        self.ftl.wear.record_erase(victim)
        # Drop this block's pages from the invalid set and free it.
        self.ftl.invalid_pages.difference_update(
            {
                ppa
                for ppa in set(self.ftl.invalid_pages)
                if (ppa.channel, ppa.chip, ppa.die, ppa.plane, ppa.block) == victim
            }
        )
        self.ftl.allocator.free_block(erase_ppa)
        self.collections += 1
        self.pages_relocated += relocated
        return GCResult(victim=victim, relocated=relocated, reclaimed=len(invalid_here), done_ns=done)
