"""Greedy garbage collection over the page-mapped FTL.

Victim selection is greedy-by-invalid-count (the standard MQSim policy):
the block with the most invalid pages is reclaimed first, still-valid pages
are relocated through the allocator, and the erase is timed against the
flash array so GC pressure shows up as channel/die occupancy.

Two driving styles share the same relocation mechanics:

* :meth:`GarbageCollector.collect` runs a whole pass synchronously at a
  given instant (maintenance windows, tests).
* :meth:`GarbageCollector.collect_process` is a generator process for the
  unified :class:`repro.sim.Simulator` kernel — it yields between page
  relocations, so foreground offload/serve processes scheduled on the same
  kernel contend with GC on the plane and bus timelines instead of seeing
  one atomic burst.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FTLError
from repro.flash.array import FlashArray, PhysicalPageAddress
from repro.ftl.mapping import PageMapFTL

BlockId = Tuple[int, int, int, int, int]  # channel, chip, die, plane, block


@dataclass
class GCResult:
    """Outcome of one collection pass."""

    victim: BlockId
    relocated: int
    reclaimed: int
    done_ns: float


class GarbageCollector:
    """Greedy victim selection + valid-page relocation + timed erase."""

    def __init__(self, ftl: PageMapFTL, array: FlashArray) -> None:
        self.ftl = ftl
        self.array = array
        self.collections = 0
        self.pages_relocated = 0
        #: Outcome of the most recent pass (set by both driving styles;
        #: the process form has no direct way to return it).
        self.last_result: Optional[GCResult] = None

    def _blocks_by_invalid(self) -> Dict[BlockId, List[PhysicalPageAddress]]:
        groups: Dict[BlockId, List[PhysicalPageAddress]] = defaultdict(list)
        for ppa in self.ftl.invalid_pages:
            key = (ppa.channel, ppa.chip, ppa.die, ppa.plane, ppa.block)
            groups[key].append(ppa)
        return groups

    def pick_victim(self) -> Optional[BlockId]:
        groups = self._blocks_by_invalid()
        # Never reclaim an open write point: its remaining pages are about
        # to be programmed.
        open_blocks = self.ftl.allocator.open_blocks()
        candidates = {k: v for k, v in groups.items() if k not in open_blocks}
        if not candidates:
            return None
        # Most invalid pages first; break ties toward least-worn blocks.
        def score(item):
            key, pages = item
            return (len(pages), -self.ftl.wear.erase_count(key))

        return max(candidates.items(), key=score)[0]

    def collect(self, at_ns: float = 0.0) -> GCResult:
        """Run one GC pass; raises if there is nothing to collect."""
        victim = self.pick_victim()
        if victim is None:
            raise FTLError("no invalid pages: nothing to collect")
        invalid_here = self._invalid_pages_in(victim)
        # Relocate valid pages (mapped pages living in this block).
        relocated = 0
        now = at_ns
        for ppa, lpa in self._valid_pages_in(victim, invalid_here):
            now = self._relocate(ppa, lpa, now)
            relocated += 1
        return self._finish(victim, invalid_here, relocated, now)

    def collect_process(self, sim, at_ns: float = 0.0):
        """One GC pass as a process on the simulation kernel.

        Control returns to the simulator after every page relocation, so
        other processes on the same kernel (offload engines, background
        host reads) issue their reservations in global time order and GC
        pressure shows up as genuine contention. The finished
        :class:`GCResult` lands in :attr:`last_result`.
        """
        victim = self.pick_victim()
        if victim is None:
            raise FTLError("no invalid pages: nothing to collect")
        yield sim.wait_until(at_ns)
        invalid_here = self._invalid_pages_in(victim)
        relocated = 0
        now = sim.now
        for ppa, lpa in self._valid_pages_in(victim, invalid_here):
            now = self._relocate(ppa, lpa, now)
            relocated += 1
            yield sim.wait_until(now)
        self._finish(victim, invalid_here, relocated, now)

    # -- shared relocation mechanics ------------------------------------------

    def _invalid_pages_in(self, victim: BlockId):
        return {
            ppa.page
            for ppa in self.ftl.invalid_pages
            if (ppa.channel, ppa.chip, ppa.die, ppa.plane, ppa.block) == victim
        }

    def _valid_pages_in(self, victim: BlockId, invalid_here):
        channel, chip, die, plane, block = victim
        for page in range(self.ftl.config.pages_per_block):
            if page in invalid_here:
                continue
            ppa = PhysicalPageAddress(channel, chip, die, plane, block, page)
            lpa = self.ftl.reverse_lookup(ppa)
            if lpa is None:
                continue  # never-written page
            yield ppa, lpa

    def _relocate(self, ppa: PhysicalPageAddress, lpa: int, now: float) -> float:
        read = self.array.service_read(ppa, now)
        _, new_ppa = self.ftl.remap_for_gc(lpa)
        write = self.array.service_write(new_ppa, read.done_ns)
        return write.array_done_ns

    def _finish(self, victim: BlockId, invalid_here, relocated: int, now: float) -> GCResult:
        channel, chip, die, plane, block = victim
        erase_ppa = PhysicalPageAddress(channel, chip, die, plane, block, 0)
        done = self.array.erase(erase_ppa, now)
        self.ftl.wear.record_erase(victim)
        # Drop this block's pages from the invalid set and free it.
        self.ftl.invalid_pages.difference_update(
            {
                ppa
                for ppa in set(self.ftl.invalid_pages)
                if (ppa.channel, ppa.chip, ppa.die, ppa.plane, ppa.block) == victim
            }
        )
        self.ftl.allocator.free_block(erase_ppa)
        self.collections += 1
        self.pages_relocated += relocated
        result = GCResult(
            victim=victim,
            relocated=relocated,
            reclaimed=len(invalid_here),
            done_ns=done,
        )
        self.last_result = result
        return result
