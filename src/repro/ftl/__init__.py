"""Flash translation layer: LPA -> PPA mapping, allocation, wear, GC.

ASSASIN's key architectural property (Section V-A) is that the FTL stays
*independent*: the crossbar lets any core consume pages wherever the FTL
placed them, so no computational-storage-aware placement is needed. The
allocator's ``skew`` knob exists purely for the Figure 19 sensitivity study.
"""

from repro.ftl.allocator import PageAllocator
from repro.ftl.mapping import PageMapFTL
from repro.ftl.gc import GarbageCollector
from repro.ftl.wear import WearTracker

__all__ = ["PageAllocator", "PageMapFTL", "GarbageCollector", "WearTracker"]
