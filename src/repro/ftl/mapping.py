"""Page-level FTL: logical-to-physical mapping over the allocator.

Implements the mapping responsibilities of Section II-A: page-granular
LPA -> PPA translation, out-of-place updates (old pages invalidated for the
garbage collector), and bulk ``populate`` used to mount datasets before an
offload run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.config import FlashConfig
from repro.errors import FTLError
from repro.flash.array import PhysicalPageAddress
from repro.ftl.allocator import PageAllocator
from repro.ftl.wear import WearTracker


class PageMapFTL:
    """LPA -> PPA map with out-of-place updates and invalidation tracking."""

    def __init__(self, config: FlashConfig, skew: float = 0.0) -> None:
        self.config = config
        self.wear = WearTracker()
        self.allocator = PageAllocator(config, skew=skew, wear=self.wear)
        self._map: Dict[int, PhysicalPageAddress] = {}
        self._invalid: Set[PhysicalPageAddress] = set()
        self.updates = 0

    # -- translation -------------------------------------------------------------

    def lookup(self, lpa: int) -> PhysicalPageAddress:
        try:
            return self._map[lpa]
        except KeyError:
            raise FTLError(f"LPA {lpa} is unmapped") from None

    def is_mapped(self, lpa: int) -> bool:
        return lpa in self._map

    def __len__(self) -> int:
        return len(self._map)

    # -- writes --------------------------------------------------------------------

    def write(self, lpa: int) -> PhysicalPageAddress:
        """Map ``lpa`` to a fresh physical page (out-of-place update)."""
        if lpa < 0:
            raise FTLError("LPA must be non-negative")
        old = self._map.get(lpa)
        if old is not None:
            self._invalid.add(old)
            self.updates += 1
        ppa = self.allocator.allocate()
        self._map[lpa] = ppa
        return ppa

    def populate(self, lpas: Iterable[int]) -> List[PhysicalPageAddress]:
        """Mount a dataset: map each LPA to a page per the placement policy."""
        return [self.write(lpa) for lpa in lpas]

    def trim(self, lpa: int) -> None:
        """Host discard: unmap and invalidate."""
        ppa = self._map.pop(lpa, None)
        if ppa is None:
            raise FTLError(f"trim of unmapped LPA {lpa}")
        self._invalid.add(ppa)

    # -- GC interface -----------------------------------------------------------------

    @property
    def invalid_pages(self) -> Set[PhysicalPageAddress]:
        return self._invalid

    def remap_for_gc(self, lpa: int, new_ppa_source: Optional[PhysicalPageAddress] = None):
        """Used by the GC when relocating a still-valid page."""
        old = self.lookup(lpa)
        new = self.allocator.allocate()
        self._map[lpa] = new
        self._invalid.add(old)
        return old, new

    def reverse_lookup(self, ppa: PhysicalPageAddress) -> Optional[int]:
        """Find the LPA mapped to ``ppa`` (linear; GC-path only)."""
        for lpa, mapped in self._map.items():
            if mapped == ppa:
                return lpa
        return None

    # -- distribution stats -------------------------------------------------------------

    def channel_page_counts(self, lpas: Optional[Iterable[int]] = None) -> List[int]:
        """How many (of the given) mapped pages sit on each channel."""
        counts = [0] * self.config.channels
        source = (self._map[l] for l in lpas) if lpas is not None else self._map.values()
        for ppa in source:
            counts[ppa.channel] += 1
        return counts
