"""Physical page allocation with channel striping and a skew knob.

Normal operation stripes consecutive writes across channels and chips to
maximise parallelism (what lets Figure 18 show balanced channels). The
``skew`` parameter (paper Section VI-E) biases placement toward channel 0:

    Skew = (max_i(D_i) / avg(D_i) - 1) / (n - 1)  in [0, 1]

0 is an even layout; 1 places everything on one channel.
"""

from __future__ import annotations

from typing import List

from repro.config import FlashConfig
from repro.errors import FTLError
from repro.flash.array import PhysicalPageAddress


def skew_shares(channels: int, skew: float) -> List[float]:
    """Per-channel data share for a given skew value.

    Channel 0 receives ``avg * (1 + skew*(n-1))``; the remainder spreads
    evenly over the other channels. skew=0 -> uniform; skew=1 -> all on
    channel 0.
    """
    if not 0.0 <= skew <= 1.0:
        raise FTLError("skew must be within [0, 1]")
    if channels == 1:
        return [1.0]
    heavy = (1.0 + skew * (channels - 1)) / channels
    rest = (1.0 - heavy) / (channels - 1)
    return [heavy] + [rest] * (channels - 1)


def measured_skew(channel_bytes: List[float]) -> float:
    """Invert the share formula from an observed distribution."""
    n = len(channel_bytes)
    total = sum(channel_bytes)
    if n <= 1 or total <= 0:
        return 0.0
    avg = total / n
    return (max(channel_bytes) / avg - 1.0) / (n - 1)


class PageAllocator:
    """Hands out physical pages channel by channel, wear-aware.

    Within a channel, pages are taken from per-chip/die/plane write points
    in round-robin; when a write point opens a new block it picks the
    least-erased free block (wear leveling). A block is only reused after
    the garbage collector erases it.
    """

    def __init__(self, config: FlashConfig, skew: float = 0.0, wear=None) -> None:
        self.config = config
        self.shares = skew_shares(config.channels, skew)
        self.wear = wear
        self._deficit: List[float] = [0.0] * config.channels
        self._cursors: List[_ChannelCursor] = [
            _ChannelCursor(config, ch, wear) for ch in range(config.channels)
        ]
        self.allocated = 0
        self.retired_blocks: set = set()

    def _pick_channel(self) -> int:
        """Weighted round-robin by share (largest accumulated deficit wins)."""
        for ch in range(self.config.channels):
            self._deficit[ch] += self.shares[ch]
        best = max(range(self.config.channels), key=lambda ch: (self._deficit[ch], -ch))
        self._deficit[best] -= 1.0
        return best

    def allocate(self) -> PhysicalPageAddress:
        """Allocate the next physical page according to the share policy."""
        first_error = None
        for _ in range(self.config.channels):
            channel = self._pick_channel()
            try:
                ppa = self._cursors[channel].next_page()
            except FTLError as exc:
                first_error = exc
                continue
            self.allocated += 1
            return ppa
        raise first_error or FTLError("flash array is full")

    def free_block(self, ppa: PhysicalPageAddress) -> None:
        """Return an erased block to its channel's free pool (GC path)."""
        self._cursors[ppa.channel].release_block(ppa)

    def retire_block(self, ppa: PhysicalPageAddress) -> bool:
        """Permanently remove a block from service (grown bad block).

        A retired block is dropped from its unit's free pool, closed if it
        was the open write point, and can never be resurrected by
        :meth:`free_block`. Returns True the first time the block is
        retired, False if it already was.
        """
        key = (ppa.channel, ppa.chip, ppa.die, ppa.plane, ppa.block)
        if key in self.retired_blocks:
            return False
        self.retired_blocks.add(key)
        self._cursors[ppa.channel].retire_block(ppa)
        return True

    def open_blocks(self):
        """Blocks currently serving as write points (GC must skip them)."""
        blocks = set()
        for channel, cursor in enumerate(self._cursors):
            for unit in cursor._units:
                if unit._current_block >= 0 and unit._next_page < self.config.pages_per_block:
                    blocks.add(
                        (channel, unit.chip, unit.die, unit.plane, unit._current_block)
                    )
        return blocks


class _ChannelCursor:
    """Round-robin write points across a channel's chips/dies/planes."""

    def __init__(self, config: FlashConfig, channel: int, wear=None) -> None:
        self.config = config
        self.channel = channel
        self._units: List[_UnitCursor] = []
        for chip in range(config.chips_per_channel):
            for die in range(config.dies_per_chip):
                for plane in range(config.planes_per_die):
                    self._units.append(_UnitCursor(config, channel, chip, die, plane, wear))
        self._rr = 0

    def next_page(self) -> PhysicalPageAddress:
        for _ in range(len(self._units)):
            unit = self._units[self._rr]
            self._rr = (self._rr + 1) % len(self._units)
            page = unit.next_page()
            if page is not None:
                return page
        raise FTLError(f"channel {self.channel} has no free pages")

    def release_block(self, ppa: PhysicalPageAddress) -> None:
        for unit in self._units:
            if (unit.chip, unit.die, unit.plane) == (ppa.chip, ppa.die, ppa.plane):
                unit.release_block(ppa.block)
                return
        raise FTLError("release_block: unit not found")

    def retire_block(self, ppa: PhysicalPageAddress) -> None:
        for unit in self._units:
            if (unit.chip, unit.die, unit.plane) == (ppa.chip, ppa.die, ppa.plane):
                unit.retire_block(ppa.block)
                return
        raise FTLError("retire_block: unit not found")


class _UnitCursor:
    """Write point within one (chip, die, plane)."""

    def __init__(
        self, config: FlashConfig, channel: int, chip: int, die: int, plane: int, wear=None
    ):
        self.config = config
        self.channel = channel
        self.chip = chip
        self.die = die
        self.plane = plane
        self.wear = wear
        self._free_blocks = list(range(config.blocks_per_plane - 1, -1, -1))
        self._retired: set = set()
        self._current_block: int = -1
        self._next_page = config.pages_per_block  # forces opening a block

    def _pick_block(self) -> int:
        """Open the least-worn free block (wear leveling)."""
        if self.wear is None:
            return self._free_blocks.pop()
        best_index = min(
            range(len(self._free_blocks)),
            key=lambda i: (
                self.wear.erase_count(
                    (self.channel, self.chip, self.die, self.plane, self._free_blocks[i])
                ),
                -i,  # prefer the natural pop order among equals
            ),
        )
        return self._free_blocks.pop(best_index)

    def next_page(self):
        if self._next_page >= self.config.pages_per_block:
            if not self._free_blocks:
                return None
            self._current_block = self._pick_block()
            self._next_page = 0
        ppa = PhysicalPageAddress(
            self.channel, self.chip, self.die, self.plane, self._current_block, self._next_page
        )
        self._next_page += 1
        return ppa

    def release_block(self, block: int) -> None:
        if block == self._current_block:
            raise FTLError("cannot release the open write block")
        if block in self._retired:
            return  # grown bad blocks never rejoin the pool
        self._free_blocks.insert(0, block)

    def retire_block(self, block: int) -> None:
        self._retired.add(block)
        if block in self._free_blocks:
            self._free_blocks.remove(block)
        if block == self._current_block:
            # Close the write point; the next allocation opens a fresh block.
            self._current_block = -1
            self._next_page = self.config.pages_per_block
