"""Zoned-namespace FTL: fixed-size zones over channel/chip-aligned block groups.

The ZNS mode replaces the page-level out-of-place map with the zone model of
NVMe ZNS (and ZCSD, see PAPERS.md): the namespace is an array of fixed-size
zones, each mapped to the same block index across every (die, plane) of one
(channel, chip) — a *block group* that one chip can program in parallel.
Writes are append-only at a per-zone write pointer; the host reclaims space
with whole-zone resets instead of page garbage collection, so the greedy
:class:`~repro.ftl.gc.GarbageCollector` is bypassed entirely and every reset
feeds the shared :class:`~repro.ftl.wear.WearTracker` directly.

Zone state machine (NVMe ZNS section 2.3, trimmed to the states the model
needs)::

    EMPTY --append/open--> OPEN --fill--> FULL
      ^        OPEN --close--> CLOSED --append--> OPEN
      |________ reset (any non-offline state; erases + wears the group)

``max_open_zones`` bounds the number of concurrently OPEN zones, as real
ZNS drives bound active zone resources.

Logical addressing: zone ``z`` owns the LBA range
``[z * zone_pages, (z+1) * zone_pages)``; ``append`` assigns LBAs at the
write pointer and returns the first one, like a ZNS Zone Append completion.
Within a zone, consecutive slots stripe across the group's (die, plane)
units so sequential appends exploit plane parallelism.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.config import FlashConfig
from repro.errors import FTLError, ZnsError
from repro.flash.array import PhysicalPageAddress
from repro.ftl.wear import WearTracker

BlockKey = Tuple[int, int, int, int, int]  # (channel, chip, die, plane, block)


class ZoneState(enum.Enum):
    EMPTY = "empty"
    OPEN = "open"
    CLOSED = "closed"
    FULL = "full"
    OFFLINE = "offline"


@dataclass(frozen=True)
class ZoneDescriptor:
    """One entry of a Zone Report."""

    zone_id: int
    state: ZoneState
    slba: int
    capacity: int
    write_pointer: int


class ZonedFTL:
    """Append-only zone mapping with whole-zone reset reclamation.

    Keeps the slices of the :class:`~repro.ftl.mapping.PageMapFTL` surface
    that shared code paths touch (``lookup``/``is_mapped``/``__len__``/
    ``invalid_pages``/``channel_page_counts``/``wear``/``allocator``), but
    random writes (``write``/``populate``/``trim``) raise: a zoned
    namespace is sequential-write-only by construction.
    """

    def __init__(self, config: FlashConfig, max_open_zones: int = 8) -> None:
        if max_open_zones <= 0:
            raise ZnsError("max_open_zones must be positive")
        self.config = config
        self.max_open_zones = max_open_zones
        self.wear = WearTracker()
        #: (die, plane) units striped within one zone's block group.
        self.units_per_zone = config.dies_per_chip * config.planes_per_die
        #: Pages per zone (= LBAs per zone).
        self.zone_pages = self.units_per_zone * config.pages_per_block
        self.num_zones = config.channels * config.chips_per_channel * config.blocks_per_plane
        self._state: Dict[int, ZoneState] = {}
        self._wp: Dict[int, int] = {}
        self._open: Set[int] = set()
        self.resets = 0
        self.appends = 0
        #: Duck-type shim for code that inspects ``ftl.allocator.open_blocks()``.
        self.allocator = _ZoneAllocatorView(self)
        #: PageMapFTL compatibility: ZNS mode has no page-GC debt, ever.
        self.updates = 0

    # -- geometry ----------------------------------------------------------------

    def _check_zone(self, zone_id: int) -> None:
        if not 0 <= zone_id < self.num_zones:
            raise ZnsError(f"zone {zone_id} out of range 0..{self.num_zones - 1}")

    def zone_group(self, zone_id: int) -> Tuple[int, int, int]:
        """(channel, chip, block) triple owning ``zone_id``'s block group."""
        self._check_zone(zone_id)
        block = zone_id % self.config.blocks_per_plane
        chip_linear = zone_id // self.config.blocks_per_plane
        chip = chip_linear % self.config.chips_per_channel
        channel = chip_linear // self.config.chips_per_channel
        return channel, chip, block

    def zone_blocks(self, zone_id: int) -> List[BlockKey]:
        """Every physical block of the zone's group."""
        channel, chip, block = self.zone_group(zone_id)
        return [
            (channel, chip, die, plane, block)
            for die in range(self.config.dies_per_chip)
            for plane in range(self.config.planes_per_die)
        ]

    def zone_slba(self, zone_id: int) -> int:
        self._check_zone(zone_id)
        return zone_id * self.zone_pages

    def slot_ppa(self, zone_id: int, slot: int) -> PhysicalPageAddress:
        """Physical page of ``slot`` within the zone (plane-striped)."""
        if not 0 <= slot < self.zone_pages:
            raise ZnsError(f"slot {slot} out of zone capacity {self.zone_pages}")
        channel, chip, block = self.zone_group(zone_id)
        unit = slot % self.units_per_zone
        die, plane = divmod(unit, self.config.planes_per_die)
        return PhysicalPageAddress(
            channel=channel,
            chip=chip,
            die=die,
            plane=plane,
            block=block,
            page=slot // self.units_per_zone,
        )

    # -- state machine -----------------------------------------------------------

    def state(self, zone_id: int) -> ZoneState:
        self._check_zone(zone_id)
        return self._state.get(zone_id, ZoneState.EMPTY)

    def write_pointer(self, zone_id: int) -> int:
        self._check_zone(zone_id)
        return self._wp.get(zone_id, 0)

    @property
    def open_zones(self) -> Set[int]:
        return set(self._open)

    def _make_open(self, zone_id: int) -> None:
        if len(self._open) >= self.max_open_zones:
            raise ZnsError(
                f"open-zone limit {self.max_open_zones} reached "
                f"(open: {sorted(self._open)})"
            )
        self._open.add(zone_id)
        self._state[zone_id] = ZoneState.OPEN

    def open_zone(self, zone_id: int) -> None:
        """Explicit open (EMPTY/CLOSED -> OPEN), bounded by the open limit."""
        state = self.state(zone_id)
        if state is ZoneState.OPEN:
            return
        if state not in (ZoneState.EMPTY, ZoneState.CLOSED):
            raise ZnsError(f"cannot open zone {zone_id} in state {state.value}")
        self._make_open(zone_id)

    def close_zone(self, zone_id: int) -> None:
        """OPEN -> CLOSED, releasing an open-zone resource."""
        if self.state(zone_id) is not ZoneState.OPEN:
            raise ZnsError(f"cannot close zone {zone_id} in state {self.state(zone_id).value}")
        self._open.discard(zone_id)
        self._state[zone_id] = ZoneState.CLOSED

    def offline_zone(self, zone_id: int) -> None:
        """Retire a worn-out zone; it never transitions out again."""
        self._check_zone(zone_id)
        self._open.discard(zone_id)
        self._state[zone_id] = ZoneState.OFFLINE

    def append(self, zone_id: int, npages: int = 1) -> Tuple[int, List[PhysicalPageAddress]]:
        """Zone Append: assign ``npages`` LBAs at the write pointer.

        Returns ``(assigned_lba, ppas)`` — the LBA of the first appended
        page (the ZNS completion value) and the physical pages the firmware
        must program. Implicitly opens an EMPTY/CLOSED zone.
        """
        if npages <= 0:
            raise ZnsError("append needs at least one page")
        state = self.state(zone_id)
        if state in (ZoneState.FULL, ZoneState.OFFLINE):
            raise ZnsError(f"append to zone {zone_id} in state {state.value}")
        if state is not ZoneState.OPEN:
            self._make_open(zone_id)
        wp = self._wp.get(zone_id, 0)
        if wp + npages > self.zone_pages:
            raise ZnsError(
                f"append of {npages} pages past zone {zone_id} capacity "
                f"({wp}/{self.zone_pages})"
            )
        ppas = [self.slot_ppa(zone_id, wp + i) for i in range(npages)]
        self._wp[zone_id] = wp + npages
        self.appends += npages
        if self._wp[zone_id] == self.zone_pages:
            self._open.discard(zone_id)
            self._state[zone_id] = ZoneState.FULL
        return self.zone_slba(zone_id) + wp, ppas

    def reset_zone(self, zone_id: int) -> List[PhysicalPageAddress]:
        """Zone Reset: rewind the write pointer, wear the block group.

        Returns one representative :class:`PhysicalPageAddress` per member
        block for the firmware to time erases against the array. A reset of
        a never-written EMPTY zone is a no-op (no erase, no wear).
        """
        state = self.state(zone_id)
        if state is ZoneState.OFFLINE:
            raise ZnsError(f"reset of offline zone {zone_id}")
        self._open.discard(zone_id)
        self._state[zone_id] = ZoneState.EMPTY
        if self._wp.get(zone_id, 0) == 0:
            # Nothing was programmed since the last erase: no media work.
            return []
        self._wp[zone_id] = 0
        self.resets += 1
        erased: List[PhysicalPageAddress] = []
        for key in self.zone_blocks(zone_id):
            self.wear.record_erase(key)
            channel, chip, die, plane, block = key
            erased.append(
                PhysicalPageAddress(
                    channel=channel, chip=chip, die=die, plane=plane, block=block, page=0
                )
            )
        return erased

    def zone_report(self, first: int = 0, count: Optional[int] = None) -> List[ZoneDescriptor]:
        """Zone Report: descriptors for ``count`` zones starting at ``first``."""
        self._check_zone(first)
        last = self.num_zones if count is None else min(self.num_zones, first + count)
        return [
            ZoneDescriptor(
                zone_id=z,
                state=self.state(z),
                slba=self.zone_slba(z),
                capacity=self.zone_pages,
                write_pointer=self._wp.get(z, 0),
            )
            for z in range(first, last)
        ]

    # -- PageMapFTL-compatible surface ---------------------------------------------

    def lookup(self, lba: int) -> PhysicalPageAddress:
        zone_id, slot = divmod(lba, self.zone_pages)
        if not 0 <= zone_id < self.num_zones or slot >= self._wp.get(zone_id, 0):
            raise FTLError(f"LBA {lba} is unmapped (beyond its zone's write pointer)")
        if self.state(zone_id) is ZoneState.OFFLINE:
            raise FTLError(f"LBA {lba} belongs to offline zone {zone_id}")
        return self.slot_ppa(zone_id, slot)

    def is_mapped(self, lba: int) -> bool:
        zone_id, slot = divmod(lba, self.zone_pages)
        return (
            0 <= zone_id < self.num_zones
            and slot < self._wp.get(zone_id, 0)
            and self.state(zone_id) is not ZoneState.OFFLINE
        )

    def __len__(self) -> int:
        return sum(self._wp.values())

    @property
    def invalid_pages(self) -> Set[PhysicalPageAddress]:
        """ZNS reclaims by zone reset; there is no page-GC debt to collect."""
        return set()

    def write(self, lpa: int) -> PhysicalPageAddress:
        raise ZnsError("zoned namespace is append-only; use append(zone_id, npages)")

    def populate(self, lpas: Iterable[int]) -> List[PhysicalPageAddress]:
        raise ZnsError("zoned namespace is append-only; use append(zone_id, npages)")

    def trim(self, lpa: int) -> None:
        raise ZnsError("zoned namespace reclaims whole zones; use reset_zone")

    def channel_page_counts(self, lpas: Optional[Iterable[int]] = None) -> List[int]:
        counts = [0] * self.config.channels
        if lpas is not None:
            for lba in lpas:
                counts[self.lookup(lba).channel] += 1
            return counts
        for zone_id, wp in self._wp.items():
            if wp:
                counts[self.zone_group(zone_id)[0]] += wp
        return counts


class _ZoneAllocatorView:
    """Just enough of :class:`~repro.ftl.allocator.PageAllocator` for code
    that asks the FTL which blocks are open (e.g. GC-debt probes): the open
    blocks of a zoned namespace are the block groups of its OPEN zones."""

    def __init__(self, ftl: ZonedFTL) -> None:
        self._ftl = ftl

    def open_blocks(self) -> Set[BlockKey]:
        keys: Set[BlockKey] = set()
        for zone_id in self._ftl.open_zones:
            keys.update(self._ftl.zone_blocks(zone_id))
        return keys
