"""Wear-leveling bookkeeping: per-block erase counts and imbalance metrics."""

from __future__ import annotations

from typing import Dict, Tuple

BlockKey = Tuple[int, int, int, int, int]  # channel, chip, die, plane, block


class WearTracker:
    """Tracks erase counts; the allocator/GC consult it to even out wear."""

    def __init__(self) -> None:
        self._erases: Dict[BlockKey, int] = {}

    def record_erase(self, key: BlockKey) -> None:
        self._erases[key] = self._erases.get(key, 0) + 1

    def erase_count(self, key: BlockKey) -> int:
        return self._erases.get(key, 0)

    @property
    def total_erases(self) -> int:
        return sum(self._erases.values())

    @property
    def max_erases(self) -> int:
        return max(self._erases.values(), default=0)

    def imbalance(self) -> float:
        """max/mean erase ratio (1.0 = perfectly even; 0 if nothing erased)."""
        if not self._erases:
            return 0.0
        mean = self.total_erases / len(self._erases)
        return self.max_erases / mean if mean else 0.0
